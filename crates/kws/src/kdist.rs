//! The keyword-distance lists `kdist(v)` (Section 4.2).
//!
//! For every node `v` and keyword `ki`, `kdist(v)[ki]` holds the shortest
//! hop distance from `v` to a node labelled `ki` (values beyond the bound
//! are not maintained — the lists are "partially updated for matches within
//! bound b") and the successor `next` on one such shortest path. Ties are
//! broken toward the smallest successor id, so batch and incremental runs
//! are comparable.

use crate::query::KwsQuery;
use igc_graph::traversal;
use igc_graph::{DynamicGraph, NodeId};

/// Distance value for "no `ki`-node within the bound" (the paper's ⊥).
pub const UNREACHED: u32 = u32::MAX;

/// One `kdist` entry: `(dist, next)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KdistEntry {
    /// Shortest distance to a node matching the keyword, or [`UNREACHED`].
    pub dist: u32,
    /// The next node on the selected shortest path (`None` when the node
    /// itself matches, or when unreached).
    pub next: Option<NodeId>,
}

impl KdistEntry {
    /// The ⊥ entry.
    pub const BOTTOM: KdistEntry = KdistEntry {
        dist: UNREACHED,
        next: None,
    };
}

/// Keyword-distance lists for all nodes: `entries[v][i]` is
/// `kdist(v)[ki]` for the i-th keyword of the query.
#[derive(Debug, Clone)]
pub struct Kdist {
    entries: Vec<Vec<KdistEntry>>,
    m: usize,
}

impl Kdist {
    /// All-⊥ lists for `n` nodes and `m` keywords.
    pub fn bottom(n: usize, m: usize) -> Self {
        Kdist {
            entries: vec![vec![KdistEntry::BOTTOM; m]; n],
            m,
        }
    }

    /// Number of keywords `m`.
    pub fn keyword_count(&self) -> usize {
        self.m
    }

    /// Number of tracked nodes.
    pub fn node_count(&self) -> usize {
        self.entries.len()
    }

    /// Grow to `n` nodes (new nodes start at ⊥).
    pub fn grow(&mut self, n: usize) {
        if self.entries.len() < n {
            self.entries.resize(n, vec![KdistEntry::BOTTOM; self.m]);
        }
    }

    /// `kdist(v)[ki]`.
    #[inline]
    pub fn get(&self, v: NodeId, ki: usize) -> KdistEntry {
        self.entries[v.index()][ki]
    }

    /// Overwrite `kdist(v)[ki]`.
    #[inline]
    pub fn set(&mut self, v: NodeId, ki: usize, e: KdistEntry) {
        self.entries[v.index()][ki] = e;
    }

    /// The full list for `v`.
    pub fn list(&self, v: NodeId) -> &[KdistEntry] {
        &self.entries[v.index()]
    }

    /// True when all `m` distances of `v` are within `bound` — `v` roots a
    /// match.
    pub fn qualifies(&self, v: NodeId, bound: u32) -> bool {
        self.entries[v.index()].iter().all(|e| e.dist <= bound)
    }

    /// The distance vector of `v` (for answer signatures).
    pub fn dists(&self, v: NodeId) -> Vec<u32> {
        self.entries[v.index()].iter().map(|e| e.dist).collect()
    }

    /// Follow `next` pointers from `root` for keyword `ki`, producing the
    /// path to the matched node. Panics on ⊥ or a broken chain (those are
    /// bugs; the validity of chains is an invariant).
    pub fn path(&self, root: NodeId, ki: usize) -> Vec<NodeId> {
        let mut path = vec![root];
        let mut cur = root;
        loop {
            let e = self.get(cur, ki);
            assert_ne!(e.dist, UNREACHED, "path() called on an unreached entry");
            match e.next {
                None => return path,
                Some(n) => {
                    assert!(
                        path.len() <= self.entries.len(),
                        "next-pointer cycle at {cur:?}"
                    );
                    path.push(n);
                    cur = n;
                }
            }
        }
    }

    /// Verify the lists against ground truth computed independently:
    /// each `dist` equals the true bounded shortest distance, and each
    /// `next` chain steps along existing edges with `dist` decreasing by 1
    /// toward a matching node. O(m·(V+E)·b) — test/debug use only.
    pub fn check_invariants(&self, g: &DynamicGraph, q: &KwsQuery) -> Result<(), String> {
        let truth = oracle_distances(g, q);
        for v in g.nodes() {
            #[allow(clippy::needless_range_loop)] // ki indexes two parallel structures
            for ki in 0..self.m {
                let e = self.get(v, ki);
                let t = truth[ki][v.index()];
                if e.dist != t {
                    return Err(format!(
                        "kdist({v:?})[{ki}].dist = {} but oracle says {t}",
                        e.dist
                    ));
                }
                if e.dist == UNREACHED {
                    if e.next.is_some() {
                        return Err(format!("unreached entry with next at {v:?}[{ki}]"));
                    }
                    continue;
                }
                match e.next {
                    None => {
                        if g.label(v) != q.keywords[ki] || e.dist != 0 {
                            return Err(format!("terminal entry invalid at {v:?}[{ki}]"));
                        }
                    }
                    Some(n) => {
                        if !g.contains_edge(v, n) {
                            return Err(format!("next edge missing at {v:?}[{ki}]"));
                        }
                        let en = self.get(n, ki);
                        if en.dist != e.dist - 1 {
                            return Err(format!("next not on a shortest path at {v:?}[{ki}]"));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

/// Ground-truth bounded keyword distances, computed by one reverse BFS per
/// keyword with an implementation independent from `batch.rs` (it reuses the
/// generic traversal helpers). `truth[ki][v]` is the distance, `UNREACHED`
/// beyond the bound.
pub fn oracle_distances(g: &DynamicGraph, q: &KwsQuery) -> Vec<Vec<u32>> {
    let mut out = Vec::with_capacity(q.m());
    for &k in &q.keywords {
        let mut dist = vec![UNREACHED; g.node_count()];
        let mut queue = std::collections::VecDeque::new();
        for &p in g.nodes_with_label(k) {
            dist[p.index()] = 0;
            queue.push_back(p);
        }
        while let Some(u) = queue.pop_front() {
            let du = dist[u.index()];
            if du == q.bound {
                continue;
            }
            for &w in g.predecessors(u) {
                if dist[w.index()] == UNREACHED {
                    dist[w.index()] = du + 1;
                    queue.push_back(w);
                }
            }
        }
        out.push(dist);
    }
    // Sanity cross-check on a few nodes against the single-pair helper.
    debug_assert!({
        let ok = g.nodes().take(8).all(|v| {
            (0..q.m()).all(|ki| {
                let t = out[ki][v.index()];
                let best = g
                    .nodes_with_label(q.keywords[ki])
                    .iter()
                    .map(|&p| traversal::dist(g, v, p))
                    .min()
                    .unwrap_or(traversal::INF);
                if best > q.bound {
                    t == UNREACHED
                } else {
                    t == best
                }
            })
        });
        ok
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use igc_graph::graph::graph_from;
    use igc_graph::Label;

    #[test]
    fn bottom_and_grow() {
        let mut k = Kdist::bottom(2, 3);
        assert_eq!(k.get(NodeId(1), 2), KdistEntry::BOTTOM);
        k.grow(5);
        assert_eq!(k.node_count(), 5);
        assert_eq!(k.get(NodeId(4), 0), KdistEntry::BOTTOM);
    }

    #[test]
    fn qualifies_requires_all_keywords() {
        let mut k = Kdist::bottom(1, 2);
        k.set(
            NodeId(0),
            0,
            KdistEntry {
                dist: 1,
                next: None,
            },
        );
        assert!(!k.qualifies(NodeId(0), 2));
        k.set(
            NodeId(0),
            1,
            KdistEntry {
                dist: 2,
                next: None,
            },
        );
        assert!(k.qualifies(NodeId(0), 2));
        assert!(!k.qualifies(NodeId(0), 1));
    }

    #[test]
    fn oracle_respects_bound() {
        // 0 → 1 → 2(k); bound 1: node 0 unreached, node 1 at distance 1.
        let g = graph_from(&[0, 0, 9], &[(0, 1), (1, 2)]);
        let q = KwsQuery::new(vec![Label(9)], 1);
        let t = oracle_distances(&g, &q);
        assert_eq!(t[0][0], UNREACHED);
        assert_eq!(t[0][1], 1);
        assert_eq!(t[0][2], 0);
    }

    #[test]
    fn path_follows_next_chain() {
        let mut k = Kdist::bottom(3, 1);
        k.set(
            NodeId(0),
            0,
            KdistEntry {
                dist: 2,
                next: Some(NodeId(1)),
            },
        );
        k.set(
            NodeId(1),
            0,
            KdistEntry {
                dist: 1,
                next: Some(NodeId(2)),
            },
        );
        k.set(
            NodeId(2),
            0,
            KdistEntry {
                dist: 0,
                next: None,
            },
        );
        assert_eq!(k.path(NodeId(0), 0), vec![NodeId(0), NodeId(1), NodeId(2)]);
    }
}
