#![warn(missing_docs)]

//! Keyword search with distinct roots (KWS) — the paper's Section 4.2.
//!
//! A query is a list of keywords `(k1 … km)` plus a hop bound `b`. A match
//! at root `r` is the tree formed by, per keyword, a shortest path (hop
//! count) from `r` to a node labelled with that keyword, all within `b`
//! hops; every node whose `m` keyword distances are all `≤ b` roots exactly
//! one match.
//!
//! The incremental problem is **unbounded** (Theorem 1) but **localizable**
//! (Theorem 3): all changes live inside the `2b`-neighbourhood of `ΔG`.
//!
//! * [`kdist`] — the keyword-distance lists `kdist(v)[ki] = (dist, next)`,
//!   the auxiliary structure every BLINKS-style batch algorithm maintains,
//! * [`batch`] — batch evaluation: one bounded multi-source reverse BFS per
//!   keyword (the unit-weight specialisation of the `O(m(V log V + E))`
//!   algorithm the paper cites),
//! * [`inc`] — [`IncKws`]: the unit algorithms `IncKWS⁺` (Fig. 1) and
//!   `IncKWS⁻` (Fig. 3) and the three-phase batch algorithm `IncKWS`, plus
//!   the paper's "Remark" extension for raising the bound `b` using
//!   breakpoint snapshots.

pub mod batch;
pub mod inc;
pub mod kdist;
pub mod query;

pub use inc::IncKws;
pub use kdist::{Kdist, KdistEntry, UNREACHED};
pub use query::{KwsQuery, MatchTree};
