//! Deletion-storm regression: when more than half the graph's edges
//! retract in ONE coalesced batch, `IncRules` must touch only the facts
//! affected by the storm — never re-evaluate the stable region.
//!
//! Two disjoint regions share one graph and one attack-reachability view:
//!
//! * region **A** (the storm): an entry point feeding a vulnerable chain
//!   with chords and back-edges (support cycles included) — every A edge
//!   dies in the storm batch, which is > 50 % of all edges;
//! * region **B** (stable): an entry point feeding a long vulnerable
//!   chain — deep derivations that make from-scratch re-evaluation
//!   expensive, and that the storm must leave bit-identical *without
//!   visiting them*.
//!
//! The work-counter assertion is the point: the storm's maintenance work
//! must be a small multiple of region A's size and at least 5× below the
//! naive from-scratch re-evaluation of the post-storm graph.

use igc_bench::workloads::{attack_label, attack_program, ATTACK_ENTRY, ATTACK_VULN};
use igc_core::{IncView, IncrementalAlgorithm};
use igc_graph::{DynamicGraph, NodeId, Update, UpdateBatch};
use igc_rules::{naive_fixpoint, Fact, IncRules};

const NB: u32 = 400; // region B chain length (node count - 1)
const NA: u32 = 200; // region A chain length (node count - 1)

/// Region B: entry at node 0, vulnerable chain 0→1→…→NB.
/// Region A: entry at NB+1, vulnerable chain plus chords and back-edges.
/// Returns the graph and the list of region-A edges (the storm set).
fn two_region_graph() -> (DynamicGraph, Vec<(NodeId, NodeId)>) {
    let mut g = DynamicGraph::new();
    g.add_node(ATTACK_ENTRY);
    for _ in 0..NB {
        g.add_node(ATTACK_VULN);
    }
    let a0 = NB + 1;
    g.add_node(ATTACK_ENTRY);
    for _ in 0..NA {
        g.add_node(ATTACK_VULN);
    }
    for i in 0..NB {
        g.insert_edge(NodeId(i), NodeId(i + 1));
    }
    let mut storm_edges = Vec::new();
    let mut a_edge = |g: &mut DynamicGraph, u: u32, v: u32| {
        g.insert_edge(NodeId(a0 + u), NodeId(a0 + v));
        storm_edges.push((NodeId(a0 + u), NodeId(a0 + v)));
    };
    for i in 0..NA {
        a_edge(&mut g, i, i + 1);
    }
    for i in 0..NA - 1 {
        a_edge(&mut g, i, i + 2); // chords: extra support everywhere
    }
    for i in (5..NA).step_by(5) {
        a_edge(&mut g, i, i - 5); // back-edges: genuine support cycles
    }
    (g, storm_edges)
}

#[test]
fn storm_touches_only_affected_facts() {
    let (program, exec, _) = attack_program();
    let (mut g, storm_edges) = two_region_graph();
    assert!(
        2 * storm_edges.len() > g.edge_count(),
        "the storm must retract more than half of all edges: {} of {}",
        storm_edges.len(),
        g.edge_count()
    );

    let mut view = IncRules::new(&g, program.clone());
    // Both chains fully executable: every node derives exec.
    assert_eq!(view.derived_count() as u32, NB + NA + 2);
    let b_facts_before: Vec<Fact> = view
        .facts_of(exec)
        .into_iter()
        .filter(|f| f.args()[0].0 <= NB)
        .collect();
    assert_eq!(b_facts_before.len() as u32, NB + 1);

    // The storm: every region-A edge out in one coalesced batch.
    let storm = UpdateBatch::from_updates(
        storm_edges
            .iter()
            .map(|&(u, v)| Update::delete(u, v))
            .collect(),
    );
    g.apply_batch(&storm);
    IncrementalAlgorithm::reset_work(&mut view);
    IncrementalAlgorithm::apply(&mut view, &g, &storm);
    let storm_work = IncrementalAlgorithm::work(&view).total();
    view.verify_against_batch(&g).expect("post-storm audit");

    // Exactly region A's derived frontier died (the A entry fact stays:
    // entry labels are base facts, not edge-supported).
    assert_eq!(view.last_delta().facts_removed, NA as u64);
    assert_eq!(view.derived_count() as u32, NB + 2);

    // Region B is bit-identical — same facts, same support counts.
    let b_facts_after: Vec<Fact> = view
        .facts_of(exec)
        .into_iter()
        .filter(|f| f.args()[0].0 <= NB)
        .collect();
    assert_eq!(b_facts_before, b_facts_after);

    // The work bound: the storm is maintained in work proportional to the
    // affected region, not by re-evaluating the database. The naive
    // oracle's from-scratch cost on the post-storm graph (dominated by
    // region B's deep chain) must dwarf it.
    let scratch = naive_fixpoint(&g, &program);
    assert_eq!(scratch.facts.len() as u32, NB + 2, "oracle agrees on size");
    let scratch_work = scratch.work.total();
    assert!(
        storm_work * 5 <= scratch_work,
        "storm work {storm_work} is not ≥5× below from-scratch {scratch_work}"
    );
}

#[test]
fn workload_labels_cover_all_roles() {
    // The windowed workload's deterministic labelling keeps every role
    // populated (the storm scenario above relies on entry + vuln only).
    let roles: Vec<_> = (0..32).map(attack_label).collect();
    assert!(roles.contains(&ATTACK_ENTRY));
    assert!(roles.contains(&ATTACK_VULN));
    assert!(roles.contains(&igc_bench::workloads::ATTACK_CRITICAL));
}
