//! Criterion version of Exp-3 (Fig. 8(m)–(p)): fixed |ΔG|, growing |G| —
//! the incremental algorithms must be much flatter in |G| than the batch
//! baselines.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use igc_bench::workloads;
use igc_core::incremental::IncrementalAlgorithm;
use igc_graph::generator::{random_update_batch, Dataset};
use igc_kws::IncKws;
use igc_scc::{tarjan, IncScc};

const BASE_SCALE: f64 = 0.02;

fn bench_kws_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8m_kws_scale");
    group.sample_size(10);
    // Fixed absolute update count = 10 % of the full-scale edge count.
    let fixed = workloads::dataset(Dataset::Synthetic, BASE_SCALE).edge_count() / 10;
    for factor in [0.5, 1.0] {
        let g = workloads::dataset(Dataset::Synthetic, BASE_SCALE * factor);
        let delta = random_update_batch(&g, fixed.min(g.edge_count()), 0.5, 21);
        let q = workloads::default_kws();
        let base = IncKws::new(&g, q.clone());
        let mut g_post = g.clone();
        g_post.apply_batch(&delta);
        group.bench_function(BenchmarkId::new("IncKWS", format!("{factor}")), |b| {
            b.iter_batched(
                || (base.clone(), g.clone()),
                |(mut inc, mut gg)| {
                    gg.apply_batch(&delta);
                    inc.apply(&gg, &delta);
                },
                BatchSize::LargeInput,
            )
        });
        group.bench_function(BenchmarkId::new("BLINKS", format!("{factor}")), |b| {
            b.iter(|| IncKws::new(&g_post, q.clone()))
        });
    }
    group.finish();
}

fn bench_scc_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8o_scc_scale");
    group.sample_size(10);
    let fixed = workloads::dataset(Dataset::Synthetic, BASE_SCALE).edge_count() / 10;
    for factor in [0.5, 1.0] {
        let g = workloads::dataset(Dataset::Synthetic, BASE_SCALE * factor);
        let delta = random_update_batch(&g, fixed.min(g.edge_count()), 0.5, 22);
        let base = IncScc::new(&g);
        let mut g_post = g.clone();
        g_post.apply_batch(&delta);
        group.bench_function(BenchmarkId::new("IncSCC", format!("{factor}")), |b| {
            b.iter_batched(
                || (base.clone(), g.clone()),
                |(mut inc, mut gg)| {
                    gg.apply_batch(&delta);
                    inc.apply(&gg, &delta);
                },
                BatchSize::LargeInput,
            )
        });
        group.bench_function(BenchmarkId::new("Tarjan", format!("{factor}")), |b| {
            b.iter(|| tarjan(&g_post))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kws_scale, bench_scc_scale);
criterion_main!(benches);
