//! Rule-view maintenance: incremental `IncRules` versus from-scratch
//! re-evaluation on the windowed attack-graph stream.
//!
//! Three arms per phase:
//!
//! * `incremental` — clone a warm view, apply the tick's coalesced batch;
//! * `scratch_seminaive` — rebuild `IncRules` from scratch on the
//!   post-tick graph (the semi-naive from-scratch baseline);
//! * `scratch_naive` — run the naive fixpoint oracle on the post-tick
//!   graph (what a non-incremental evaluator would pay).
//!
//! Phases: `slide` (one steady-state window tick: a cohort in, a cohort
//! out) and `storm` (half the window retracted in one coalesced batch) —
//! the deletion-heavy regime the support-counting machinery exists for.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use igc_bench::workloads::{attack_program, WindowedStream};
use igc_core::IncrementalAlgorithm;
use igc_graph::{DynamicGraph, UpdateBatch};
use igc_rules::{naive_fixpoint, IncRules, Program};

const NODES: usize = 400;
const WINDOW: usize = 8;
const PER_TICK: usize = 400;
const SEED: u64 = 0x5EED_2017;

/// A warm window: graph + stream after `WINDOW + 3` ticks, with the view
/// caught up, plus one prepared delta (`tick` or `storm`) and the graph
/// state after that delta.
struct Warm {
    program: Program,
    g_before: DynamicGraph,
    view: IncRules,
    delta: UpdateBatch,
    g_after: DynamicGraph,
}

fn warm(storm: bool) -> Warm {
    let (program, _, _) = attack_program();
    let (mut g, mut ws) = WindowedStream::new(NODES, WINDOW, PER_TICK, SEED);
    let mut view = IncRules::new(&g, program.clone());
    for _ in 0..WINDOW + 3 {
        let delta = ws.next_batch();
        g.apply_batch(&delta);
        view.apply(&g, &delta);
    }
    let g_before = g.clone();
    let delta = if storm {
        ws.storm(WINDOW / 2)
    } else {
        ws.next_batch()
    };
    g.apply_batch(&delta);
    Warm {
        program,
        g_before,
        view,
        delta,
        g_after: g,
    }
}

fn bench_phase(c: &mut Criterion, phase: &str, storm: bool) {
    let w = warm(storm);
    let mut group = c.benchmark_group(format!("rules_maintain/{phase}"));

    group.bench_function("incremental", |b| {
        b.iter_batched(
            || w.view.clone(),
            |mut view| {
                view.apply(&w.g_after, &w.delta);
                view
            },
            BatchSize::LargeInput,
        )
    });
    group.bench_function("scratch_seminaive", |b| {
        b.iter(|| IncRules::new(&w.g_after, w.program.clone()))
    });
    group.bench_function("scratch_naive", |b| {
        b.iter(|| naive_fixpoint(&w.g_after, &w.program))
    });
    group.finish();

    // Keep the warm state honest: the cloned view must still be exact.
    let mut check = w.view.clone();
    check.apply(&w.g_after, &w.delta);
    assert!(w.g_before.edge_count() > 0);
    igc_core::IncView::verify_against_batch(&check, &w.g_after).expect("warm view audits clean");
}

fn rules_maintain(c: &mut Criterion) {
    bench_phase(c, "slide", false);
    bench_phase(c, "storm", true);
}

criterion_group!(benches, rules_maintain);
criterion_main!(benches);
