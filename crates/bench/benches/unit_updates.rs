//! Criterion version of Exp-1(5): unit insertion/deletion response times —
//! where the paper reports its largest speedups (89×–393× over batch).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use igc_bench::workloads;
use igc_core::incremental::IncrementalAlgorithm;
use igc_graph::generator::{random_update_batch, Dataset};
use igc_iso::IncIso;
use igc_kws::IncKws;
use igc_rpq::IncRpq;
use igc_scc::IncScc;

const SCALE: f64 = 0.02;

fn bench_units(c: &mut Criterion) {
    let mut group = c.benchmark_group("unit_updates");
    group.sample_size(10);
    let g = workloads::dataset(Dataset::DbpediaLike, SCALE);
    for (kind, rho) in [("insert", 1.0), ("delete", 0.0)] {
        let delta = random_update_batch(&g, 1, rho, 77);

        let base = IncKws::new(&g, workloads::default_kws());
        group.bench_function(BenchmarkId::new("IncKWS", kind), |b| {
            b.iter_batched(
                || (base.clone(), g.clone()),
                |(mut inc, mut gg)| {
                    gg.apply_batch(&delta);
                    inc.apply(&gg, &delta);
                },
                BatchSize::LargeInput,
            )
        });

        let q = workloads::default_rpq(495);
        let base = IncRpq::new(&g, &q);
        group.bench_function(BenchmarkId::new("IncRPQ", kind), |b| {
            b.iter_batched(
                || (base.clone(), g.clone()),
                |(mut inc, mut gg)| {
                    gg.apply_batch(&delta);
                    inc.apply(&gg, &delta);
                },
                BatchSize::LargeInput,
            )
        });

        let base = IncScc::new(&g);
        group.bench_function(BenchmarkId::new("IncSCC", kind), |b| {
            b.iter_batched(
                || (base.clone(), g.clone()),
                |(mut inc, mut gg)| {
                    gg.apply_batch(&delta);
                    inc.apply(&gg, &delta);
                },
                BatchSize::LargeInput,
            )
        });

        let base = IncIso::new(&g, workloads::default_iso());
        group.bench_function(BenchmarkId::new("IncISO", kind), |b| {
            b.iter_batched(
                || (base.clone(), g.clone()),
                |(mut inc, mut gg)| {
                    gg.apply_batch(&delta);
                    inc.apply(&gg, &delta);
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_units);
criterion_main!(benches);
