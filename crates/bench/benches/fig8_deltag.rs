//! Criterion version of Exp-1 (Fig. 8(a)–(i)): incremental vs batch as
//! |ΔG| grows, one group per query class. Scaled down so `cargo bench`
//! finishes quickly; the `experiments` binary runs the full sweeps.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use igc_bench::workloads;
use igc_core::incremental::IncrementalAlgorithm;
use igc_core::work::WorkStats;
use igc_graph::generator::{random_update_batch, Dataset};
use igc_iso::{enumerate_matches, IncIso};
use igc_kws::IncKws;
use igc_nfa::build_nfa;
use igc_rpq::{batch as rpq_batch, IncRpq};
use igc_scc::{tarjan, IncScc};

const SCALE: f64 = 0.02;
const FRACS: [f64; 2] = [0.05, 0.20];

fn bench_kws(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8a_kws");
    group.sample_size(10);
    let g = workloads::dataset(Dataset::DbpediaLike, SCALE);
    let q = workloads::default_kws();
    let base = IncKws::new(&g, q.clone());
    for frac in FRACS {
        let delta = random_update_batch(&g, (g.edge_count() as f64 * frac) as usize, 0.5, 1);
        let mut g_post = g.clone();
        g_post.apply_batch(&delta);
        group.bench_with_input(
            BenchmarkId::new("IncKWS", format!("{frac}")),
            &delta,
            |b, d| {
                b.iter_batched(
                    || (base.clone(), g.clone()),
                    |(mut inc, mut gg)| {
                        gg.apply_batch(d);
                        inc.apply(&gg, d);
                    },
                    BatchSize::LargeInput,
                )
            },
        );
        group.bench_function(BenchmarkId::new("BLINKS", format!("{frac}")), |b| {
            b.iter(|| IncKws::new(&g_post, q.clone()))
        });
    }
    group.finish();
}

fn bench_rpq(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8b_rpq");
    group.sample_size(10);
    let g = workloads::dataset(Dataset::DbpediaLike, SCALE);
    let q = workloads::default_rpq(495);
    let nfa = build_nfa(&q);
    let base = IncRpq::new(&g, &q);
    for frac in FRACS {
        let delta = random_update_batch(&g, (g.edge_count() as f64 * frac) as usize, 0.5, 2);
        let mut g_post = g.clone();
        g_post.apply_batch(&delta);
        group.bench_with_input(
            BenchmarkId::new("IncRPQ", format!("{frac}")),
            &delta,
            |b, d| {
                b.iter_batched(
                    || (base.clone(), g.clone()),
                    |(mut inc, mut gg)| {
                        gg.apply_batch(d);
                        inc.apply(&gg, d);
                    },
                    BatchSize::LargeInput,
                )
            },
        );
        group.bench_function(BenchmarkId::new("RPQnfa", format!("{frac}")), |b| {
            b.iter(|| {
                let mut w = WorkStats::new();
                rpq_batch::evaluate(&g_post, &nfa, &mut w)
            })
        });
    }
    group.finish();
}

fn bench_scc(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8c_scc");
    group.sample_size(10);
    let g = workloads::dataset(Dataset::Synthetic, SCALE);
    let base = IncScc::new(&g);
    for frac in FRACS {
        let delta = random_update_batch(&g, (g.edge_count() as f64 * frac) as usize, 0.5, 3);
        let mut g_post = g.clone();
        g_post.apply_batch(&delta);
        group.bench_with_input(
            BenchmarkId::new("IncSCC", format!("{frac}")),
            &delta,
            |b, d| {
                b.iter_batched(
                    || (base.clone(), g.clone()),
                    |(mut inc, mut gg)| {
                        gg.apply_batch(d);
                        inc.apply(&gg, d);
                    },
                    BatchSize::LargeInput,
                )
            },
        );
        group.bench_function(BenchmarkId::new("Tarjan", format!("{frac}")), |b| {
            b.iter(|| tarjan(&g_post))
        });
    }
    group.finish();
}

fn bench_iso(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8d_iso");
    group.sample_size(10);
    let g = workloads::dataset(Dataset::DbpediaLike, SCALE);
    let p = workloads::default_iso();
    let base = IncIso::new(&g, p.clone());
    for frac in FRACS {
        let delta = random_update_batch(&g, (g.edge_count() as f64 * frac) as usize, 0.5, 4);
        let mut g_post = g.clone();
        g_post.apply_batch(&delta);
        group.bench_with_input(
            BenchmarkId::new("IncISO", format!("{frac}")),
            &delta,
            |b, d| {
                b.iter_batched(
                    || (base.clone(), g.clone()),
                    |(mut inc, mut gg)| {
                        gg.apply_batch(d);
                        inc.apply(&gg, d);
                    },
                    BatchSize::LargeInput,
                )
            },
        );
        group.bench_function(BenchmarkId::new("VF2", format!("{frac}")), |b| {
            b.iter(|| {
                let mut w = WorkStats::new();
                enumerate_matches(&g_post, &p, &mut w)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kws, bench_rpq, bench_scc, bench_iso);
criterion_main!(benches);
