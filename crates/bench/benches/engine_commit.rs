//! Engine commit pipeline: all four view classes registered on one
//! churning generator-built graph, measuring `Engine::commit` end to end
//! (normalize once → apply ΔG once → fan out to every view) — plus a
//! receipt-overhead series (`tiny_views`) that isolates the per-commit
//! bookkeeping cost: with `Arc<str>` registry labels a receipt entry is a
//! refcount bump, where the v1 engine cloned every label `String` into
//! every receipt of every commit.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use igc_bench::workloads;
use igc_core::{IncView, WorkStats};
use igc_engine::{CommitMode, Engine};
use igc_graph::generator::{random_update_batch, Dataset};
use igc_graph::{DynamicGraph, Update, UpdateBatch};
use igc_iso::IncIso;
use igc_kws::IncKws;
use igc_rpq::IncRpq;
use igc_scc::IncScc;

const SCALE: f64 = 0.02;

/// A view whose `apply` is (almost) free, so a commit over many of them
/// measures the engine's per-view overhead: timing, work attribution, and
/// receipt construction (label sharing included).
#[derive(Clone)]
struct TinyView {
    edges: usize,
}

impl IncView for TinyView {
    fn name(&self) -> &str {
        "tiny"
    }
    fn apply(&mut self, g: &DynamicGraph, _delta: &UpdateBatch) {
        self.edges = g.edge_count();
    }
    fn work(&self) -> WorkStats {
        WorkStats::new()
    }
    fn reset_work(&mut self) {}
    fn verify_against_batch(&self, g: &DynamicGraph) -> Result<(), String> {
        if self.edges == g.edge_count() {
            Ok(())
        } else {
            Err("edge count drifted".into())
        }
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn clone_view(&self) -> Box<dyn IncView> {
        Box::new(self.clone())
    }
}

/// Base state built once: graph plus pre-constructed views (cloned into a
/// fresh engine per sample, so every measured commit starts identical).
struct Base {
    g: DynamicGraph,
    rpq: IncRpq,
    scc: IncScc,
    kws: IncKws,
    iso: IncIso,
}

impl Base {
    fn build() -> Base {
        let g = workloads::dataset(Dataset::DbpediaLike, SCALE);
        let rpq = IncRpq::new(&g, &workloads::default_rpq(495));
        let scc = IncScc::new(&g);
        let kws = IncKws::new(&g, workloads::default_kws());
        let iso = IncIso::new(&g, workloads::default_iso());
        Base {
            g,
            rpq,
            scc,
            kws,
            iso,
        }
    }

    fn engine(&self) -> Engine {
        let mut e = Engine::new(self.g.clone());
        e.register(self.rpq.clone()).unwrap();
        e.register(self.scc.clone()).unwrap();
        e.register(self.kws.clone()).unwrap();
        e.register(self.iso.clone()).unwrap();
        e
    }
}

/// A hot-churn submission stream: 64 batches of 8 raw units, every unit
/// toggling one edge from a small pool of node pairs shared by the whole
/// stream — the workload shape the async ingest front door coalesces into
/// one normalized mega-batch per commit tick (see
/// `experiments::engine_ingest`).
fn churn_stream(g: &DynamicGraph) -> Vec<UpdateBatch> {
    use igc_graph::NodeId;
    let n = g.node_count() as u64;
    let mut state = 0x1A6E57u64;
    let mut next = move || {
        // splitmix64
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let pool: Vec<(NodeId, NodeId)> = (0..48)
        .map(|_| {
            let a = next() % n;
            let mut b = next() % n;
            if a == b {
                b = (b + 1) % n;
            }
            (NodeId(a as u32), NodeId(b as u32))
        })
        .collect();
    (0..64)
        .map(|_| {
            (0..8)
                .map(|_| {
                    let (src, dst) = pool[(next() % 48) as usize];
                    if next() % 2 == 0 {
                        Update::insert(src, dst)
                    } else {
                        Update::delete(src, dst)
                    }
                })
                .collect()
        })
        .collect()
}

/// Duplicate every unit update — the denormalized-client shape the commit
/// pipeline absorbs via its single normalization pass.
fn pollute(delta: &UpdateBatch) -> UpdateBatch {
    let mut messy: Vec<Update> = Vec::with_capacity(delta.len() * 2);
    for u in delta.iter() {
        messy.push(*u);
        messy.push(*u);
    }
    UpdateBatch::from_updates(messy)
}

fn bench_engine_commit(c: &mut Criterion) {
    let base = Base::build();
    let mut group = c.benchmark_group("engine_commit");
    group.sample_size(10);

    for units in [1usize, 10, 100] {
        let delta = random_update_batch(&base.g, units, 0.5, 20_000 + units as u64);
        group.bench_function(BenchmarkId::new("all_views", units), |b| {
            b.iter_batched(
                || base.engine(),
                |mut engine| engine.commit(&delta).unwrap(),
                BatchSize::LargeInput,
            )
        });
    }

    // Normalization overhead: the same 100 net units submitted twice over.
    let delta = random_update_batch(&base.g, 100, 0.5, 20_100);
    let messy = pollute(&delta);
    group.bench_function(BenchmarkId::new("all_views_denormalized", 200), |b| {
        b.iter_batched(
            || base.engine(),
            |mut engine| engine.commit(&messy).unwrap(),
            BatchSize::LargeInput,
        )
    });

    // Fan-out modes head to head: the same 100-unit delta committed to the
    // same four views, sequentially and across worker threads. On a
    // multi-core host the parallel series should approach the slowest
    // single view's latency; on a single core it exposes the thread-spawn
    // overhead instead (both are worth tracking).
    let delta = random_update_batch(&base.g, 100, 0.5, 20_400);
    group.bench_function(BenchmarkId::new("fanout_sequential", 100), |b| {
        b.iter_batched(
            || base.engine(),
            |mut engine| engine.commit(&delta).unwrap(),
            BatchSize::LargeInput,
        )
    });
    for threads in [2usize, 4] {
        group.bench_function(BenchmarkId::new("fanout_parallel", threads), |b| {
            b.iter_batched(
                || {
                    let mut e = base.engine();
                    e.set_commit_mode(CommitMode::Parallel { threads });
                    e
                },
                |mut engine| engine.commit(&delta).unwrap(),
                BatchSize::LargeInput,
            )
        });
    }

    // Coalescing head to head: the ingest front door's commit-tick shape.
    // The same 64-submission hot-churn stream committed as one mega-batch
    // (one tick coalescing all 64) versus one commit per submission. The
    // tick's single normalization pass collapses cross-submission churn to
    // at most one net update per edge, buying back both the per-commit
    // fixed cost and the view work the same edges' intermediate states
    // would otherwise incur 64 times over.
    let stream = churn_stream(&base.g);
    let mega: UpdateBatch = stream.iter().flat_map(|b| b.iter().copied()).collect();
    group.bench_function(BenchmarkId::new("coalesced_tick", 64), |b| {
        b.iter_batched(
            || base.engine(),
            |mut engine| engine.commit(&mega).unwrap(),
            BatchSize::LargeInput,
        )
    });
    group.bench_function(BenchmarkId::new("per_submission_commits", 64), |b| {
        b.iter_batched(
            || base.engine(),
            |mut engine| {
                for sub in &stream {
                    engine.commit(sub).unwrap();
                }
            },
            BatchSize::LargeInput,
        )
    });

    // Journaling overhead on the hot path: the same 100-unit delta
    // committed to the same four views, with and without a write-ahead
    // commit log. `logged_commit` uses the file backend (OS-buffered, no
    // per-append fsync — the deployment default) into a throwaway
    // directory; `logged_commit_mem` isolates the pure codec + epoch-chain
    // cost from filesystem noise. Target from the durability PR: < 5 %
    // overhead over `unlogged_commit` at experiment scale.
    let delta = random_update_batch(&base.g, 100, 0.5, 20_500);
    group.bench_function(BenchmarkId::new("unlogged_commit", 100), |b| {
        b.iter_batched(
            || base.engine(),
            |mut engine| engine.commit(&delta).unwrap(),
            BatchSize::LargeInput,
        )
    });
    let log_root = std::env::temp_dir().join(format!("igc_log_bench_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&log_root);
    let log_dir_seq = std::cell::Cell::new(0u64);
    group.bench_function(BenchmarkId::new("logged_commit", 100), |b| {
        b.iter_batched(
            || {
                let n = log_dir_seq.get();
                log_dir_seq.set(n + 1);
                let backend = igc_log::FileBackend::new(log_root.join(format!("run-{n}")))
                    .expect("create log dir");
                base.engine()
                    .with_log(std::sync::Arc::new(backend))
                    .expect("attach log")
            },
            |mut engine| engine.commit(&delta).unwrap(),
            BatchSize::LargeInput,
        )
    });
    group.bench_function(BenchmarkId::new("logged_commit_mem", 100), |b| {
        b.iter_batched(
            || {
                base.engine()
                    .with_log(std::sync::Arc::new(igc_log::MemBackend::new()))
                    .expect("attach log")
            },
            |mut engine| engine.commit(&delta).unwrap(),
            BatchSize::LargeInput,
        )
    });
    let _ = std::fs::remove_dir_all(&log_root);

    // MVCC publish overhead under pinned readers. Every variant drives
    // the same four warm-up commits, so the measured commit starts from
    // identical state; the pinned variants keep a reader `Snapshot` alive
    // at the last `pins` warm-up epochs, forcing the measured commit to
    // copy-on-write the graph and every shared view before mutating.
    // `pins = 0` is the free-publish baseline: pre-commit version GC
    // leaves the store's Arcs unique, so publication is pure Arc-sharing
    // with zero copies (target: indistinguishable from `unlogged_commit`
    // up to the warm-up state difference).
    let delta = random_update_batch(&base.g, 100, 0.5, 20_600);
    let warm: Vec<UpdateBatch> = (0..4)
        .map(|i| random_update_batch(&base.g, 4, 0.5, 20_700 + i))
        .collect();
    for pins in [0usize, 1, 4] {
        group.bench_function(BenchmarkId::new("commit_under_pinned_readers", pins), |b| {
            b.iter_batched(
                || {
                    let mut e = base.engine();
                    let mut snaps = Vec::new();
                    for (i, w) in warm.iter().enumerate() {
                        e.commit(w).unwrap();
                        if warm.len() - i <= pins {
                            snaps.push(e.snapshot().unwrap());
                        }
                    }
                    (e, snaps)
                },
                |(mut engine, snaps)| {
                    let receipt = engine.commit(&delta).unwrap();
                    drop(snaps);
                    receipt
                },
                BatchSize::LargeInput,
            )
        });
    }

    // The pipeline floor: normalize + graph apply with zero views.
    let delta = random_update_batch(&base.g, 100, 0.5, 20_200);
    group.bench_function(BenchmarkId::new("no_views", 100), |b| {
        b.iter_batched(
            || Engine::new(base.g.clone()),
            |mut engine| engine.commit(&delta).unwrap(),
            BatchSize::LargeInput,
        )
    });

    // Receipt overhead: many near-free views with deliberately long labels,
    // a single-unit delta. Dominated by per-view bookkeeping — under v1
    // each sample cloned every label String into the receipt; under v2 the
    // `Arc<str>` labels make each entry a refcount bump.
    for views in [16usize, 64] {
        let delta = random_update_batch(&base.g, 1, 0.5, 20_300 + views as u64);
        group.bench_function(BenchmarkId::new("tiny_views_receipt", views), |b| {
            b.iter_batched(
                || {
                    let mut e = Engine::new(base.g.clone());
                    let tiny = TinyView {
                        edges: base.g.edge_count(),
                    };
                    for i in 0..views {
                        e.register_labeled(
                            format!("tenant:{i:04}:some-descriptive-standing-query-label"),
                            tiny.clone(),
                        )
                        .unwrap();
                    }
                    e
                },
                |mut engine| engine.commit(&delta).unwrap(),
                BatchSize::LargeInput,
            )
        });
    }

    group.finish();
}

criterion_group!(benches, bench_engine_commit);
criterion_main!(benches);
