//! Criterion version of Exp-2 (Fig. 8(j)–(l)): incremental algorithms as
//! the query grows, at fixed |ΔG| = 10 %.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use igc_bench::workloads;
use igc_core::incremental::IncrementalAlgorithm;
use igc_graph::generator::{random_update_batch, Dataset};
use igc_iso::IncIso;
use igc_kws::IncKws;
use igc_rpq::IncRpq;

const SCALE: f64 = 0.02;

fn bench_kws_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8j_kws_query");
    group.sample_size(10);
    let g = workloads::dataset(Dataset::DbpediaLike, SCALE);
    let delta = random_update_batch(&g, g.edge_count() / 10, 0.5, 11);
    for (m, b) in [(2u32, 1u32), (4, 3), (6, 5)] {
        let q = workloads::kws_query(m as usize, b);
        let base = IncKws::new(&g, q);
        group.bench_function(BenchmarkId::new("IncKWS", format!("({m},{b})")), |bch| {
            bch.iter_batched(
                || (base.clone(), g.clone()),
                |(mut inc, mut gg)| {
                    gg.apply_batch(&delta);
                    inc.apply(&gg, &delta);
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_rpq_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8k_rpq_query");
    group.sample_size(10);
    let g = workloads::dataset(Dataset::DbpediaLike, SCALE);
    let delta = random_update_batch(&g, g.edge_count() / 10, 0.5, 12);
    for size in [3usize, 5, 7] {
        let q = workloads::rpq_query(size, 495);
        let base = IncRpq::new(&g, &q);
        group.bench_function(BenchmarkId::new("IncRPQ", format!("{size}")), |bch| {
            bch.iter_batched(
                || (base.clone(), g.clone()),
                |(mut inc, mut gg)| {
                    gg.apply_batch(&delta);
                    inc.apply(&gg, &delta);
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_iso_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8l_iso_query");
    group.sample_size(10);
    let g = workloads::dataset(Dataset::DbpediaLike, SCALE);
    let delta = random_update_batch(&g, g.edge_count() / 10, 0.5, 13);
    for n in [3usize, 5, 7] {
        let p = workloads::iso_pattern(n);
        let base = IncIso::new(&g, p);
        group.bench_function(
            BenchmarkId::new("IncISO", format!("({},{},{})", n, n + 2, n - 2)),
            |bch| {
                bch.iter_batched(
                    || (base.clone(), g.clone()),
                    |(mut inc, mut gg)| {
                        gg.apply_batch(&delta);
                        inc.apply(&gg, &delta);
                    },
                    BatchSize::LargeInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_kws_queries,
    bench_rpq_queries,
    bench_iso_queries
);
criterion_main!(benches);
