#![warn(missing_docs)]

//! Experiment harness reproducing the paper's evaluation (Section 6).
//!
//! Every panel of Figure 8 plus the in-text experiments (unit updates,
//! ρ-sensitivity, optimisation ratios) has a code path here:
//!
//! * [`workloads`] — datasets (DESIGN.md §2.4 stand-ins for DBpedia /
//!   LiveJournal / the synthetic generator) and the query generators the
//!   paper sweeps (KWS `(m, b)`, RPQ `|Q|`, ISO `(|V_Q|, |E_Q|, d_Q)`),
//! * [`harness`] — timing and table formatting,
//! * [`experiments`] — one function per figure; the `experiments` binary
//!   drives them and prints paper-style series.
//!
//! Absolute times differ from the paper (different hardware, scaled-down
//! graphs); the comparisons of interest are the *shapes*: who wins, where
//! the crossover sits, how the algorithms scale with `|ΔG|`, `|Q|`, `|G|`.

pub mod experiments;
pub mod harness;
pub mod workloads;
