//! Reproduce the paper's evaluation: print paper-style series for every
//! panel of Figure 8 and the in-text experiments.
//!
//! ```text
//! experiments [--scale F] [--no-verify] [fig8a fig8b … | all | unit | rho | undoable | locality]
//! ```
//!
//! With no figure arguments, everything runs. `--scale` scales the
//! datasets (1.0 = the laptop-sized full datasets; default 0.15).

use igc_bench::experiments::{self, ExpConfig, ALL_FIGS};

fn main() {
    let mut cfg = ExpConfig::default();
    let mut figs: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                let v = args.next().expect("--scale needs a value");
                cfg.scale = v.parse().expect("scale must be a float");
            }
            "--no-verify" => cfg.verify = false,
            "all" => figs.extend(ALL_FIGS.iter().map(|s| s.to_string())),
            "--help" | "-h" => {
                eprintln!(
                    "usage: experiments [--scale F] [--no-verify] [fig8a … fig8p | all | unit | rho | undoable | locality]"
                );
                return;
            }
            other => figs.push(other.to_string()),
        }
    }
    if figs.is_empty() {
        figs.extend(ALL_FIGS.iter().map(|s| s.to_string()));
        figs.extend(["unit", "rho", "undoable", "locality"].map(String::from));
    }

    println!(
        "# Experiments (scale {}, verify {})\n",
        cfg.scale, cfg.verify
    );
    for fig in figs {
        let start = std::time::Instant::now();
        let series = experiments::run(&fig, &cfg);
        println!("{}", series.render());
        eprintln!("[{fig} done in {:.1?}]", start.elapsed());
    }
}
