//! Reproduce the paper's evaluation: print paper-style series for every
//! panel of Figure 8 and the in-text experiments, plus the multi-view
//! engine serving trajectory.
//!
//! ```text
//! experiments [--scale F] [--no-verify] [--threads N] [--json-out PATH]
//!             [--log] [--crash-at N] [--log-dir PATH] [--replicas N]
//!             [--ingest N] [--rules N] [--chaos N] [--snapshots N]
//!             [fig8a fig8b … | all | unit | rho | undoable | locality | engine]
//! ```
//!
//! With no figure arguments, everything runs. `--scale` scales the
//! datasets (1.0 = the laptop-sized full datasets; default 0.15).
//! `--threads N` makes the `engine` experiment commit with
//! `CommitMode::Parallel { threads: N }` (default: sequential). The
//! `engine` experiment additionally writes its per-commit latency series —
//! including a sequential-vs-parallel comparison — as machine-readable
//! JSON to `--json-out` (default `BENCH_engine.json`), so the perf
//! trajectory accumulates across revisions.
//!
//! Durability flags (the `engine` experiment): `--log` attaches a
//! file-backed write-ahead commit log (journal totals, a
//! replay-throughput series and a background `rpq:bg` build land in the
//! JSON); `--crash-at N` drops the logged engine after `N` commits,
//! recovers it from the journal, audits, and serves the rest of the run
//! (implies `--log`); `--log-dir PATH` keeps the journal at `PATH`
//! (wiped at start) instead of a throwaway temp directory; `--replicas N`
//! (implies `--log`) adds a `replication` section to the JSON — read
//! throughput at 1/2/4 log-shipped replicas, observed tailing lag with
//! `N` followers under sustained commit load plus backlog drain time,
//! and journal bytes staying bounded under periodic compaction.
//! `--ingest N` adds an `ingest` section: `N` concurrent submitter
//! threads through the async ingest front door under four arms (durable
//! every-append vs group-commit, volatile per-submission vs coalesced),
//! with throughput, p50/p99 submit→receipt latency, fsync-barrier counts
//! and receipts-match-submissions + journal-replay audits.
//! `--rules N` adds a `rules` section: an `igc_rules` attack-graph view
//! over a sliding-window edge stream — window fill, `N` steady-state
//! slide ticks, then a deletion storm retracting half the window in one
//! coalesced batch, with per-commit latency, derivation counters, oracle
//! audits, and the storm-phase speedup over from-scratch re-evaluation.
//! `--chaos N` adds a `chaos` section: `N` deterministic seeded fault
//! storms (transient append/read/sync failures and torn half-writes
//! injected into the journal backend) against a logged engine under a
//! retry policy — absorbed-retry counts, degraded read-only windows with
//! wall-clock and mean time-to-heal, self-healing replica counters
//! (transient-read tail retries, post-compaction reattaches), and
//! no-acked-commit-lost + views-bit-identical audits against a
//! never-faulted twin.
//! `--snapshots N` adds a `snapshots` section: MVCC publish overhead per
//! commit vs the median commit latency (audited < 5 %), commit latency
//! and version-window size under a sliding set of pinned reader
//! snapshots plus one long-lived frozen pin (audited bit-identical at
//! the end of the run), and lock-free reader throughput from `N`
//! snapshot-pinning threads under sustained writes.

use igc_bench::experiments::{self, ExpConfig, ALL_FIGS};

fn main() {
    let mut cfg = ExpConfig::default();
    let mut figs: Vec<String> = Vec::new();
    let mut json_out = String::from("BENCH_engine.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                let v = args.next().expect("--scale needs a value");
                cfg.scale = v.parse().expect("scale must be a float");
            }
            "--no-verify" => cfg.verify = false,
            "--threads" => {
                let v = args.next().expect("--threads needs a value");
                cfg.threads = v.parse().expect("threads must be an integer");
            }
            "--json-out" => {
                json_out = args.next().expect("--json-out needs a path");
            }
            "--log" => cfg.log = true,
            "--crash-at" => {
                let v = args.next().expect("--crash-at needs a commit count");
                cfg.crash_at = Some(v.parse().expect("crash-at must be an integer"));
                cfg.log = true;
            }
            "--log-dir" => {
                cfg.log_dir = Some(args.next().expect("--log-dir needs a path"));
                cfg.log = true;
            }
            "--replicas" => {
                let v = args.next().expect("--replicas needs a count");
                cfg.replicas = v.parse().expect("replicas must be an integer");
                cfg.log = true;
            }
            "--ingest" => {
                let v = args.next().expect("--ingest needs a submitter count");
                cfg.ingest = v.parse().expect("ingest must be an integer");
            }
            "--rules" => {
                let v = args.next().expect("--rules needs a slide-tick count");
                cfg.rules = v.parse().expect("rules must be an integer");
            }
            "--chaos" => {
                let v = args.next().expect("--chaos needs a storm count");
                cfg.chaos = v.parse().expect("chaos must be an integer");
            }
            "--snapshots" => {
                let v = args.next().expect("--snapshots needs a reader count");
                cfg.snapshots = v.parse().expect("snapshots must be an integer");
            }
            "all" => figs.extend(ALL_FIGS.iter().map(|s| s.to_string())),
            "--help" | "-h" => {
                eprintln!(
                    "usage: experiments [--scale F] [--no-verify] [--threads N] [--json-out PATH] \
                     [--log] [--crash-at N] [--log-dir PATH] [--replicas N] [--ingest N] \
                     [--rules N] [--chaos N] [--snapshots N] \
                     [fig8a … fig8p | all | unit | rho | undoable | locality | engine]"
                );
                return;
            }
            other => figs.push(other.to_string()),
        }
    }
    if figs.is_empty() {
        figs.extend(ALL_FIGS.iter().map(|s| s.to_string()));
        figs.extend(["unit", "rho", "undoable", "locality", "engine"].map(String::from));
    }

    println!(
        "# Experiments (scale {}, verify {})\n",
        cfg.scale, cfg.verify
    );
    for fig in figs {
        let start = std::time::Instant::now();
        if fig == "engine" {
            let run = experiments::engine_run(&cfg);
            println!("{}", run.series.render());
            match std::fs::write(&json_out, &run.json) {
                Ok(()) => eprintln!("[engine series written to {json_out}]"),
                Err(e) => eprintln!("[failed to write {json_out}: {e}]"),
            }
        } else {
            let series = experiments::run(&fig, &cfg);
            println!("{}", series.render());
        }
        eprintln!("[{fig} done in {:.1?}]", start.elapsed());
    }
}
