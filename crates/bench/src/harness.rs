//! Timing and table output for the experiments.

use std::time::{Duration, Instant};

/// Wall-clock one closure.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// One experiment data point: an x-value (e.g. |ΔG| as a percentage) and
/// the measured time per algorithm, in the paper's column order.
#[derive(Debug, Clone)]
pub struct Row {
    /// The swept parameter, formatted (e.g. "10%", "(3,2)", "0.4").
    pub x: String,
    /// `(algorithm name, seconds)` pairs.
    pub times: Vec<(&'static str, f64)>,
}

/// A full experiment series: a title (figure id) and its rows.
#[derive(Debug, Clone)]
pub struct Series {
    /// e.g. "Fig 8(a) Varying ΔG, KWS (DBpedia-like)".
    pub title: String,
    /// The x-axis label.
    pub x_label: &'static str,
    /// Unit of the measured values ("s" for timings, "ops"/"count" for the
    /// instrumentation demos).
    pub unit: &'static str,
    /// The measured rows.
    pub rows: Vec<Row>,
}

impl Series {
    /// Render the series as an aligned text table (also valid Markdown).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("## {}\n\n", self.title));
        if self.rows.is_empty() {
            out.push_str("(no data)\n");
            return out;
        }
        let algos: Vec<&str> = self.rows[0].times.iter().map(|(n, _)| *n).collect();
        out.push_str(&format!("| {} |", self.x_label));
        for a in &algos {
            out.push_str(&format!(" {a} ({}) |", self.unit));
        }
        out.push('\n');
        out.push_str(&format!("|{}", "---|".repeat(algos.len() + 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&format!("| {} |", r.x));
            for (_, t) in &r.times {
                if self.unit == "s" {
                    out.push_str(&format!(" {t:.4} |"));
                } else {
                    out.push_str(&format!(" {t:.0} |"));
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Format a fraction as the paper's percentage ticks.
pub fn pct(f: f64) -> String {
    format!("{}%", (f * 100.0).round() as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_measures_something() {
        let (v, d) = time(|| (0..10_000).sum::<u64>());
        assert_eq!(v, 49_995_000);
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn series_renders_markdown_table() {
        let s = Series {
            title: "Fig X".into(),
            x_label: "|ΔG|",
            unit: "s",
            rows: vec![Row {
                x: "5%".into(),
                times: vec![("Inc", 0.5), ("Batch", 2.0)],
            }],
        };
        let r = s.render();
        assert!(r.contains("| |ΔG| | Inc (s) | Batch (s) |"));
        assert!(r.contains("| 5% | 0.5000 | 2.0000 |"));
    }

    #[test]
    fn pct_rounds() {
        assert_eq!(pct(0.05), "5%");
        assert_eq!(pct(0.4), "40%");
    }
}
