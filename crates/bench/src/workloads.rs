//! Datasets and query generators for the experiments.

use igc_graph::generator::Dataset;
use igc_graph::{DynamicGraph, Label, LabelInterner};
use igc_iso::Pattern;
use igc_kws::KwsQuery;
use igc_nfa::Regex;

/// Fixed seed so every experiment run sees the same graphs.
pub const GRAPH_SEED: u64 = 20170514; // SIGMOD'17 opening day

/// Build a dataset graph at the given scale.
pub fn dataset(d: Dataset, scale: f64) -> DynamicGraph {
    d.generate(scale, GRAPH_SEED)
}

/// A KWS query with `m` keywords and bound `b`, keywords drawn as the first
/// `m` labels of the alphabet (every label id exists in the generated
/// graphs with overwhelming probability).
pub fn kws_query(m: usize, b: u32) -> KwsQuery {
    KwsQuery::new((0..m as u32).map(Label).collect(), b)
}

/// An RPQ of the paper's size measure `|Q| = size` (label occurrences),
/// with one union and one Kleene star — the *anchored* family
/// `lR · (l0 + l1)* · l2 · … ` over an alphabet of `alphabet` Zipf-ranked
/// labels, where `R` is a mid-tail rank (a few percent of nodes).
///
/// The shape mirrors real RPQ workloads (and the paper's Example 4): a
/// selective anchor label at the source, broad traversal labels under the
/// star. With Zipfian labels the anchors are few while the traversal
/// explores a large reachable region, so the batch algorithm's cost is
/// genuinely `Θ(sources · region)` — see DESIGN.md §2.4.
pub fn rpq_query(size: usize, alphabet: usize) -> Regex {
    assert!(size >= 3, "the family needs at least three occurrences");
    assert!(alphabet >= 8);
    // Anchor rank: selective but populated — a few percent of nodes, like
    // an entity type one hops *from* in a real knowledge-graph RPQ.
    let rare = (alphabet / 40).max(6);
    let mut s = format!("l{rare}.(l0+l1)*");
    for i in 2..size - 1 {
        s.push_str(&format!(".l{i}"));
    }
    let mut interner = LabelInterner::new();
    // Intern numeric labels in id order so l{i} ↔ Label(i).
    for i in 0..alphabet {
        interner.intern(&format!("l{i}"));
    }
    Regex::parse(&s, &mut interner).expect("generated query parses")
}

/// An ISO pattern following the paper's Exp-2 sweep shape
/// `(|V_Q|, |E_Q|, d_Q)`: `n` nodes and diameter `n - 2`, with `|E_Q| =
/// n + 1` (n ≥ 4). The paper's exact `n + 2` edge counts force antiparallel
/// edge pairs or long directed cycles, which have essentially no matches in
/// sparse digraphs — on our generator stand-ins both sides of the
/// comparison would degenerate to trivial label filtering. One fewer edge
/// keeps the same node counts and diameters with a DAG-shaped motif that
/// actually occurs (see DESIGN.md §2.4). Labels cycle through `{0, 1, 2}`,
/// the head of the Zipf distribution.
pub fn iso_pattern(n: usize) -> Pattern {
    assert!(n >= 3);
    let labels: Vec<u32> = (0..n as u32).map(|i| i % 3).collect();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    if n == 3 {
        // (3, 3, 1): transitive triangle — every pair adjacent undirected.
        edges.extend([(0, 1), (1, 2), (0, 2)]);
    } else {
        // Path 0→1→…→(n-2): undirected diameter n-2 over n-1 nodes; the
        // pair (0, n-2) realises it.
        for i in 0..n as u32 - 2 {
            edges.push((i, i + 1));
        }
        // Node n-1 collects in-edges from 0, 1, 2. Detours through n-1
        // connect nodes at path distance ≤ 2, so dist(0, n-2) — and with it
        // the diameter — stays n-2.
        edges.push((0, n as u32 - 1));
        edges.push((1, n as u32 - 1));
        edges.push((2, n as u32 - 1));
    }
    let p = Pattern::from_parts(&labels, &edges);
    debug_assert_eq!(p.edge_count(), if n == 3 { 3 } else { n + 1 });
    debug_assert_eq!(p.diameter(), n - 2);
    p
}

/// The paper's default queries for Exp-1/Exp-3: KWS `(m,b) = (3,2)`,
/// RPQ `|Q| = 4`, ISO `(4,6,2)`.
pub fn default_kws() -> KwsQuery {
    kws_query(3, 2)
}

/// Default RPQ (`|Q| = 4`) for a given dataset alphabet.
pub fn default_rpq(alphabet: usize) -> Regex {
    rpq_query(4, alphabet)
}

/// Default ISO pattern (`(4,6,2)`).
pub fn default_iso() -> Pattern {
    iso_pattern(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rpq_sizes_match_paper_measure() {
        for size in 3..=7 {
            assert_eq!(rpq_query(size, 100).size(), size, "|Q| for size {size}");
            assert_eq!(rpq_query(size, 495).size(), size);
        }
    }

    #[test]
    fn iso_patterns_match_paper_shapes() {
        for n in 3..=7 {
            let p = iso_pattern(n);
            assert_eq!(p.node_count(), n);
            assert_eq!(p.edge_count(), if n == 3 { 3 } else { n + 1 });
            assert_eq!(p.diameter(), n - 2);
        }
    }

    #[test]
    fn datasets_generate_at_small_scale() {
        for d in [
            Dataset::DbpediaLike,
            Dataset::LivejournalLike,
            Dataset::Synthetic,
        ] {
            let g = dataset(d, 0.01);
            assert!(g.node_count() > 0);
            assert!(g.edge_count() > 0);
        }
    }

    #[test]
    fn kws_query_uses_leading_labels() {
        let q = kws_query(4, 3);
        assert_eq!(q.m(), 4);
        assert_eq!(q.keywords[3], Label(3));
    }
}
