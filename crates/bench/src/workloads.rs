//! Datasets and query generators for the experiments.

use igc_graph::fxhash::FxHashSet;
use igc_graph::generator::Dataset;
use igc_graph::{DynamicGraph, Edge, Label, LabelInterner, NodeId, Update, UpdateBatch};
use igc_iso::Pattern;
use igc_kws::KwsQuery;
use igc_nfa::Regex;
use igc_rules::{v, Atom, PredId, Program, RuleSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Fixed seed so every experiment run sees the same graphs.
pub const GRAPH_SEED: u64 = 20170514; // SIGMOD'17 opening day

/// Build a dataset graph at the given scale.
pub fn dataset(d: Dataset, scale: f64) -> DynamicGraph {
    d.generate(scale, GRAPH_SEED)
}

/// A KWS query with `m` keywords and bound `b`, keywords drawn as the first
/// `m` labels of the alphabet (every label id exists in the generated
/// graphs with overwhelming probability).
pub fn kws_query(m: usize, b: u32) -> KwsQuery {
    KwsQuery::new((0..m as u32).map(Label).collect(), b)
}

/// An RPQ of the paper's size measure `|Q| = size` (label occurrences),
/// with one union and one Kleene star — the *anchored* family
/// `lR · (l0 + l1)* · l2 · … ` over an alphabet of `alphabet` Zipf-ranked
/// labels, where `R` is a mid-tail rank (a few percent of nodes).
///
/// The shape mirrors real RPQ workloads (and the paper's Example 4): a
/// selective anchor label at the source, broad traversal labels under the
/// star. With Zipfian labels the anchors are few while the traversal
/// explores a large reachable region, so the batch algorithm's cost is
/// genuinely `Θ(sources · region)` — see DESIGN.md §2.4.
pub fn rpq_query(size: usize, alphabet: usize) -> Regex {
    assert!(size >= 3, "the family needs at least three occurrences");
    assert!(alphabet >= 8);
    // Anchor rank: selective but populated — a few percent of nodes, like
    // an entity type one hops *from* in a real knowledge-graph RPQ.
    let rare = (alphabet / 40).max(6);
    let mut s = format!("l{rare}.(l0+l1)*");
    for i in 2..size - 1 {
        s.push_str(&format!(".l{i}"));
    }
    let mut interner = LabelInterner::new();
    // Intern numeric labels in id order so l{i} ↔ Label(i).
    for i in 0..alphabet {
        interner.intern(&format!("l{i}"));
    }
    Regex::parse(&s, &mut interner).expect("generated query parses")
}

/// An ISO pattern following the paper's Exp-2 sweep shape
/// `(|V_Q|, |E_Q|, d_Q)`: `n` nodes and diameter `n - 2`, with `|E_Q| =
/// n + 1` (n ≥ 4). The paper's exact `n + 2` edge counts force antiparallel
/// edge pairs or long directed cycles, which have essentially no matches in
/// sparse digraphs — on our generator stand-ins both sides of the
/// comparison would degenerate to trivial label filtering. One fewer edge
/// keeps the same node counts and diameters with a DAG-shaped motif that
/// actually occurs (see DESIGN.md §2.4). Labels cycle through `{0, 1, 2}`,
/// the head of the Zipf distribution.
pub fn iso_pattern(n: usize) -> Pattern {
    assert!(n >= 3);
    let labels: Vec<u32> = (0..n as u32).map(|i| i % 3).collect();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    if n == 3 {
        // (3, 3, 1): transitive triangle — every pair adjacent undirected.
        edges.extend([(0, 1), (1, 2), (0, 2)]);
    } else {
        // Path 0→1→…→(n-2): undirected diameter n-2 over n-1 nodes; the
        // pair (0, n-2) realises it.
        for i in 0..n as u32 - 2 {
            edges.push((i, i + 1));
        }
        // Node n-1 collects in-edges from 0, 1, 2. Detours through n-1
        // connect nodes at path distance ≤ 2, so dist(0, n-2) — and with it
        // the diameter — stays n-2.
        edges.push((0, n as u32 - 1));
        edges.push((1, n as u32 - 1));
        edges.push((2, n as u32 - 1));
    }
    let p = Pattern::from_parts(&labels, &edges);
    debug_assert_eq!(p.edge_count(), if n == 3 { 3 } else { n + 1 });
    debug_assert_eq!(p.diameter(), n - 2);
    p
}

// ---------------------------------------------------------------------
// Rule-view workloads (the `igc_rules` fifth view class)
// ---------------------------------------------------------------------

/// Host roles in the attack-graph workload, encoded as node labels.
pub const ATTACK_ENTRY: Label = Label(1);
/// An unpatched service an attacker can pivot through.
pub const ATTACK_VULN: Label = Label(2);
/// A crown-jewel asset — reaching one derives `goal_reached`.
pub const ATTACK_CRITICAL: Label = Label(3);

/// The anchored attack-reachability program over host-role labels:
///
/// ```text
/// exec_code(h)    ⇐ has_label(h, ENTRY)
/// exec_code(y)    ⇐ exec_code(x) ∧ edge(x, y) ∧ has_label(y, VULN)
/// exec_code(y)    ⇐ exec_code(x) ∧ edge(x, y) ∧ has_label(y, CRITICAL)
/// goal_reached(h) ⇐ exec_code(h) ∧ has_label(h, CRITICAL)
/// ```
///
/// Anchored (recursion grows from entry points) rather than all-pairs
/// transitive closure, so the derived-fact count stays `O(|V|)` at
/// experiment scale instead of `O(|V|²)`. Returns the compiled program
/// plus the `exec_code` and `goal_reached` predicate ids.
pub fn attack_program() -> (Program, PredId, PredId) {
    let mut rs = RuleSet::new();
    let exec = rs.predicate("exec_code", 1).expect("fresh predicate");
    let goal = rs.predicate("goal_reached", 1).expect("fresh predicate");
    rs.rule(exec, &[v(0)], vec![Atom::has_label(v(0), ATTACK_ENTRY)])
        .expect("valid rule");
    for target in [ATTACK_VULN, ATTACK_CRITICAL] {
        rs.rule(
            exec,
            &[v(1)],
            vec![
                Atom::pred(exec, &[v(0)]),
                Atom::edge(v(0), v(1)),
                Atom::has_label(v(1), target),
            ],
        )
        .expect("valid rule");
    }
    rs.rule(
        goal,
        &[v(0)],
        vec![
            Atom::pred(exec, &[v(0)]),
            Atom::has_label(v(0), ATTACK_CRITICAL),
        ],
    )
    .expect("valid rule");
    (rs.compile().expect("stratifiable program"), exec, goal)
}

/// The host-role label for node `i` in the windowed-streaming workload:
/// deterministic by index — 1/16 entry points, 1/16 critical assets,
/// 10/16 vulnerable services, the rest hardened (`Label(0)`).
pub fn attack_label(i: usize) -> Label {
    match i % 16 {
        0 => ATTACK_ENTRY,
        1 => ATTACK_CRITICAL,
        r if r < 12 => ATTACK_VULN,
        _ => Label(0),
    }
}

/// A sliding-window edge stream over a fixed node population: each tick
/// inserts a fresh cohort of random edges and — once the window is full —
/// retracts the cohort that slid out, in the **same coalesced batch**.
/// Deletion storms are the workload's point: every slide retracts a whole
/// cohort at once, and [`WindowedStream::storm`] retracts many cohorts in
/// one batch.
///
/// Deterministic for a given seed; nodes are labelled by [`attack_label`].
#[derive(Debug)]
pub struct WindowedStream {
    nodes: usize,
    /// First node id of the churn region (edges never touch ids below it).
    base: u32,
    window: usize,
    per_tick: usize,
    rng: StdRng,
    /// Live cohorts, oldest first.
    live: VecDeque<Vec<Edge>>,
    /// Edges currently in the graph (cohorts are disjoint).
    present: FxHashSet<Edge>,
}

/// Depth of one backbone corridor (an entry-anchored chain of hosts);
/// bounds the naive evaluator's round count so from-scratch baselines pay
/// for the backbone's *size*, not an artificially inflated iteration
/// depth.
pub const BACKBONE_CORRIDOR: usize = 64;

impl WindowedStream {
    /// An edge-free graph of `nodes` labelled hosts plus the stream that
    /// will populate it: `window` live ticks of `per_tick` edges each.
    pub fn new(nodes: usize, window: usize, per_tick: usize, seed: u64) -> (DynamicGraph, Self) {
        Self::with_backbone(0, nodes, window, per_tick, seed)
    }

    /// Like [`WindowedStream::new`], but the graph additionally carries a
    /// persistent **backbone**: `backbone` long-lived infrastructure hosts
    /// in the disjoint id range `[0, backbone)`, wired as entry-anchored
    /// corridors ([`BACKBONE_CORRIDOR`]-deep chains with chords for
    /// redundant support) that never slide out of the window. The churn
    /// region lives entirely in `[backbone, backbone + nodes)`, so a
    /// window storm retracts transient edges only: from-scratch
    /// re-evaluation pays for the whole database, backbone included, while
    /// incremental maintenance is bounded by the affected (windowed)
    /// facts.
    pub fn with_backbone(
        backbone: usize,
        nodes: usize,
        window: usize,
        per_tick: usize,
        seed: u64,
    ) -> (DynamicGraph, Self) {
        assert!(nodes >= 2 && window >= 1 && per_tick >= 1);
        let mut g = DynamicGraph::new();
        for i in 0..backbone {
            let label = if i % BACKBONE_CORRIDOR == 0 {
                ATTACK_ENTRY
            } else if i % 97 == 1 {
                ATTACK_CRITICAL
            } else {
                ATTACK_VULN
            };
            g.add_node(label);
        }
        for i in 0..backbone {
            let at = |j: usize| NodeId(j as u32);
            if (i + 1) % BACKBONE_CORRIDOR != 0 && i + 1 < backbone {
                g.insert_edge(at(i), at(i + 1));
            }
            if i % 3 == 0 && i % BACKBONE_CORRIDOR < BACKBONE_CORRIDOR - 2 && i + 2 < backbone {
                g.insert_edge(at(i), at(i + 2));
            }
        }
        for i in 0..nodes {
            g.add_node(attack_label(i));
        }
        let stream = WindowedStream {
            nodes,
            base: backbone as u32,
            window,
            per_tick,
            rng: StdRng::seed_from_u64(seed),
            live: VecDeque::new(),
            present: FxHashSet::default(),
        };
        (g, stream)
    }

    /// Edges currently live in the window.
    pub fn live_edges(&self) -> usize {
        self.present.len()
    }

    /// The next tick: insert a fresh cohort and, if the window is full,
    /// retract the oldest one — one coalesced batch, already normalized
    /// with respect to the stream's own graph.
    pub fn next_batch(&mut self) -> UpdateBatch {
        let mut updates = Vec::with_capacity(self.per_tick * 2);
        if self.live.len() == self.window {
            let old = self.live.pop_front().expect("window is full");
            for (u, v) in old {
                self.present.remove(&(u, v));
                updates.push(Update::delete(u, v));
            }
        }
        let mut cohort = Vec::with_capacity(self.per_tick);
        while cohort.len() < self.per_tick {
            let u = NodeId(self.base + self.rng.gen_range(0..self.nodes as u32));
            let w = NodeId(self.base + self.rng.gen_range(0..self.nodes as u32));
            if u != w && self.present.insert((u, w)) {
                cohort.push((u, w));
                updates.push(Update::insert(u, w));
            }
        }
        self.live.push_back(cohort);
        UpdateBatch::from_updates(updates)
    }

    /// A deletion storm: retract the oldest `cohorts` cohorts in one
    /// coalesced batch (no insertions). With `cohorts >= window / 2` this
    /// retracts at least half the live edges in a single tick.
    pub fn storm(&mut self, cohorts: usize) -> UpdateBatch {
        let n = cohorts.min(self.live.len());
        let mut updates = Vec::new();
        for _ in 0..n {
            let old = self.live.pop_front().expect("cohort count bounded above");
            for (u, v) in old {
                self.present.remove(&(u, v));
                updates.push(Update::delete(u, v));
            }
        }
        UpdateBatch::from_updates(updates)
    }
}

/// The paper's default queries for Exp-1/Exp-3: KWS `(m,b) = (3,2)`,
/// RPQ `|Q| = 4`, ISO `(4,6,2)`.
pub fn default_kws() -> KwsQuery {
    kws_query(3, 2)
}

/// Default RPQ (`|Q| = 4`) for a given dataset alphabet.
pub fn default_rpq(alphabet: usize) -> Regex {
    rpq_query(4, alphabet)
}

/// Default ISO pattern (`(4,6,2)`).
pub fn default_iso() -> Pattern {
    iso_pattern(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rpq_sizes_match_paper_measure() {
        for size in 3..=7 {
            assert_eq!(rpq_query(size, 100).size(), size, "|Q| for size {size}");
            assert_eq!(rpq_query(size, 495).size(), size);
        }
    }

    #[test]
    fn iso_patterns_match_paper_shapes() {
        for n in 3..=7 {
            let p = iso_pattern(n);
            assert_eq!(p.node_count(), n);
            assert_eq!(p.edge_count(), if n == 3 { 3 } else { n + 1 });
            assert_eq!(p.diameter(), n - 2);
        }
    }

    #[test]
    fn datasets_generate_at_small_scale() {
        for d in [
            Dataset::DbpediaLike,
            Dataset::LivejournalLike,
            Dataset::Synthetic,
        ] {
            let g = dataset(d, 0.01);
            assert!(g.node_count() > 0);
            assert!(g.edge_count() > 0);
        }
    }

    #[test]
    fn kws_query_uses_leading_labels() {
        let q = kws_query(4, 3);
        assert_eq!(q.m(), 4);
        assert_eq!(q.keywords[3], Label(3));
    }

    #[test]
    fn windowed_stream_slides_and_storms() {
        let (mut g, mut ws) = WindowedStream::new(50, 4, 20, 7);
        assert_eq!(g.edge_count(), 0);
        for tick in 0..6 {
            let batch = ws.next_batch();
            let (dels, ins) = batch.split_edges();
            assert_eq!(ins.len(), 20);
            assert_eq!(dels.len(), if tick < 4 { 0 } else { 20 }, "tick {tick}");
            g.apply_batch(&batch);
            assert_eq!(g.edge_count(), ws.live_edges());
        }
        assert_eq!(ws.live_edges(), 80);
        // Storm: half the window out in one coalesced batch.
        let storm = ws.storm(2);
        let (dels, ins) = storm.split_edges();
        assert_eq!((dels.len(), ins.len()), (40, 0));
        g.apply_batch(&storm);
        assert_eq!(g.edge_count(), 40);
    }

    #[test]
    fn windowed_stream_is_deterministic() {
        let (_, mut a) = WindowedStream::new(40, 3, 10, 9);
        let (_, mut b) = WindowedStream::new(40, 3, 10, 9);
        for _ in 0..5 {
            assert_eq!(
                format!("{:?}", a.next_batch()),
                format!("{:?}", b.next_batch())
            );
        }
    }

    #[test]
    fn attack_program_compiles_and_is_anchored() {
        let (p, exec, goal) = attack_program();
        assert_eq!(p.pred_count(), 2);
        assert_eq!(p.rule_count(), 4);
        assert!(p.is_recursive(exec));
        assert!(!p.is_recursive(goal));
    }
}
