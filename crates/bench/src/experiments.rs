//! One function per figure/table of the paper's evaluation.
//!
//! Each data point measures, from a precomputed auxiliary state:
//! * the grouped incremental algorithm (`Inc*`),
//! * the one-update-at-a-time variant (`Inc*ⁿ`),
//! * the batch algorithm recomputing on `G ⊕ ΔG` from scratch,
//! * for SCC additionally the dynamic baseline `DynSCC`.
//!
//! With `verify` on, every point cross-checks the incremental answer
//! against the batch answer on the updated graph — the harness doubles as
//! an integration test at experiment scale.

use crate::harness::{pct, time, Row, Series};
use crate::workloads::{self, GRAPH_SEED};
use igc_core::incremental::{apply_one_by_one, IncrementalAlgorithm};
use igc_core::work::WorkStats;
use igc_engine::{Engine, ViewHandle};
use igc_graph::generator::{random_update_batch, Dataset};
use igc_graph::{DynamicGraph, UpdateBatch};
use igc_iso::{IncIso, Pattern};
use igc_kws::{batch as kws_batch, IncKws, KwsQuery};
use igc_log::{FileBackend, LogBackend};
use igc_nfa::{build_nfa, Regex};
use igc_rpq::{batch as rpq_batch, IncRpq};
use igc_scc::{tarjan, DynScc, IncScc};
use std::sync::Arc;

/// Experiment configuration shared by all figures.
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// Dataset scale (1.0 = the laptop-sized full datasets of DESIGN.md).
    pub scale: f64,
    /// Cross-check incremental answers against batch recomputation.
    pub verify: bool,
    /// Commit fan-out for the `engine` experiment: `0` = sequential,
    /// `n ≥ 1` = `CommitMode::Parallel { threads: n }` (the `--threads`
    /// flag of the experiments binary).
    pub threads: usize,
    /// Attach a durable commit log to the `engine` experiment (`--log`):
    /// commits journal write-ahead, the run demonstrates a background
    /// view build, and the JSON gains log/replay-throughput sections.
    pub log: bool,
    /// Crash the (logged) engine after this many commits (`--crash-at N`),
    /// then `Engine::recover` from the journal, re-register the four
    /// classes, audit, and serve the remaining commits. Implies `log`.
    pub crash_at: Option<usize>,
    /// Directory for the file-backed log (`--log-dir`); wiped before the
    /// run and kept after it. Default: a throwaway temp directory,
    /// removed when the run ends.
    pub log_dir: Option<String>,
    /// Tailing read replicas for the `engine` experiment (`--replicas N`,
    /// implies `log`): `n ≥ 1` adds a `replication` section to the JSON —
    /// read throughput at 1/2/4 replicas, observed lag under sustained
    /// commit load plus backlog drain time, and a journal-boundedness
    /// series of compactions across checkpoint cadences.
    pub replicas: usize,
    /// Concurrent submitter threads for the ingest micro-benchmark
    /// (`--ingest N`): `n ≥ 1` adds an `ingest` section to the JSON —
    /// four arms (durable every-append / group-commit, volatile
    /// per-submission / coalesced) with throughput, p50/p99
    /// submit→receipt latency, fsync-barrier counts, and
    /// receipts-match-submissions + journal-replay audits.
    pub ingest: usize,
    /// Slide ticks for the rule-view micro-benchmark (`--rules N`):
    /// `n ≥ 1` adds a `rules` section to the JSON — an [`igc_rules`]
    /// attack-graph view over a sliding-window edge stream, with
    /// per-commit latency for insert-heavy (fill) and deletion-storm
    /// phases, maintenance counters, oracle audits, and the storm-phase
    /// speedup over from-scratch re-evaluation.
    pub rules: usize,
    /// Seeded fault storms for the chaos resilience run (`--chaos N`):
    /// `n ≥ 1` adds a `chaos` section to the JSON — `n` deterministic
    /// storms of injected append/read/sync faults (torn half-writes
    /// included) driven through a logged engine under a [`RetryPolicy`],
    /// with absorbed-retry counts, degraded-window counts and wall-clock,
    /// mean time-to-heal, self-healing replica counters
    /// (tail retries / post-compaction reattaches), and
    /// no-acked-commit-lost + views-bit-identical audits against a
    /// never-faulted twin.
    ///
    /// [`RetryPolicy`]: igc_log::RetryPolicy
    pub chaos: usize,
    /// Concurrent snapshot-reader threads for the MVCC serving run
    /// (`--snapshots N`): `n ≥ 1` adds a `snapshots` section to the JSON —
    /// publish overhead on the commit hot path (MVCC bookkeeping as a
    /// share of commit latency — target < 5 % of the median commit),
    /// copy-on-write cost under held pins, reader throughput from `n`
    /// threads pinning and reading snapshots while commits flow, the
    /// version-window memory series, and frozen-pin + window-bound audits.
    pub snapshots: usize,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            scale: 0.15,
            verify: true,
            threads: 0,
            log: false,
            crash_at: None,
            log_dir: None,
            replicas: 0,
            ingest: 0,
            rules: 0,
            chaos: 0,
            snapshots: 0,
        }
    }
}

/// The [`CommitMode`](igc_engine::CommitMode) an [`ExpConfig`] asks for.
fn commit_mode(cfg: &ExpConfig) -> igc_engine::CommitMode {
    if cfg.threads == 0 {
        igc_engine::CommitMode::Sequential
    } else {
        igc_engine::CommitMode::Parallel {
            threads: cfg.threads,
        }
    }
}

/// The |ΔG| fractions of Exp-1 (5 % … 40 % of |G|'s edges).
pub const DELTAG_FRACS: [f64; 8] = [0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40];

fn delta_for(g: &DynamicGraph, frac: f64, rho_insert: f64, salt: u64) -> UpdateBatch {
    let count = ((g.edge_count() as f64) * frac).round() as usize;
    random_update_batch(g, count.max(1), rho_insert, GRAPH_SEED ^ salt)
}

// ---------------------------------------------------------------------
// Per-class measurement points
// ---------------------------------------------------------------------

/// Measure KWS algorithms on one `(G, ΔG)` instance.
pub fn kws_point(
    g: &DynamicGraph,
    q: &KwsQuery,
    delta: &UpdateBatch,
    verify: bool,
) -> Vec<(&'static str, f64)> {
    let base = IncKws::new(g, q.clone());

    let mut inc = base.clone();
    let mut g_inc = g.clone();
    let (_, t_inc) = time(|| {
        g_inc.apply_batch(delta);
        inc.apply(&g_inc, delta);
    });

    let mut incn = base.clone();
    let mut g_n = g.clone();
    let (_, t_incn) = time(|| apply_one_by_one(&mut incn, &mut g_n, delta));

    // The batch baseline pays the full-graph O(m(V log V + E)) cost a
    // general BLINKS-style engine pays (see kws_batch::compute_kdist_baseline).
    let (_, t_batch) = time(|| {
        let mut w = WorkStats::new();
        kws_batch::compute_kdist_baseline(&g_inc, q, &mut w)
    });
    if verify {
        let fresh = IncKws::new(&g_inc, q.clone());
        assert_eq!(
            inc.answer_signature(),
            fresh.answer_signature(),
            "IncKWS diverged from batch"
        );
        assert_eq!(incn.answer_signature(), fresh.answer_signature());
    }
    vec![
        ("IncKWS", t_inc.as_secs_f64()),
        ("IncKWSn", t_incn.as_secs_f64()),
        ("BLINKS", t_batch.as_secs_f64()),
    ]
}

/// Measure RPQ algorithms on one instance.
pub fn rpq_point(
    g: &DynamicGraph,
    q: &Regex,
    delta: &UpdateBatch,
    verify: bool,
) -> Vec<(&'static str, f64)> {
    let base = IncRpq::new(g, q);

    let mut inc = base.clone();
    let mut g_inc = g.clone();
    let (_, t_inc) = time(|| {
        g_inc.apply_batch(delta);
        inc.apply(&g_inc, delta);
    });

    let mut incn = base.clone();
    let mut g_n = g.clone();
    let (_, t_incn) = time(|| apply_one_by_one(&mut incn, &mut g_n, delta));

    // The batch column rebuilds the full queryable state from scratch on
    // G ⊕ ΔG (traversal + markings) — the from-scratch response an
    // incrementalized system would have to pay; the pure answer-only
    // traversal is what the paper's RPQ_NFA does and is cheaper by a small
    // constant (see EXPERIMENTS.md).
    let (fresh, t_batch) = time(|| IncRpq::with_nfa(&g_inc, build_nfa(q)));
    if verify {
        assert_eq!(
            inc.sorted_answer(),
            fresh.sorted_answer(),
            "IncRPQ diverged from batch"
        );
        assert_eq!(incn.sorted_answer(), fresh.sorted_answer());
        let mut w = WorkStats::new();
        let plain = rpq_batch::evaluate(&g_inc, fresh.nfa(), &mut w);
        assert_eq!(fresh.sorted_answer(), rpq_batch::sorted_answer(&plain));
    }
    vec![
        ("IncRPQ", t_inc.as_secs_f64()),
        ("IncRPQn", t_incn.as_secs_f64()),
        ("RPQnfa", t_batch.as_secs_f64()),
    ]
}

/// Measure SCC algorithms on one instance.
pub fn scc_point(g: &DynamicGraph, delta: &UpdateBatch, verify: bool) -> Vec<(&'static str, f64)> {
    let base = IncScc::new(g);

    let mut inc = base.clone();
    let mut g_inc = g.clone();
    let (_, t_inc) = time(|| {
        g_inc.apply_batch(delta);
        inc.apply(&g_inc, delta);
    });

    let mut incn = base.clone();
    let mut g_n = g.clone();
    let (_, t_incn) = time(|| apply_one_by_one(&mut incn, &mut g_n, delta));

    let (fresh, t_batch) = time(|| tarjan(&g_inc));

    let mut dyn_scc = DynScc::new(g);
    let mut g_d = g.clone();
    let (_, t_dyn) = time(|| apply_one_by_one(&mut dyn_scc, &mut g_d, delta));

    if verify {
        let canon = fresh.canonical();
        assert_eq!(inc.components(), canon, "IncSCC diverged from Tarjan");
        assert_eq!(incn.components(), canon);
        assert_eq!(dyn_scc.components(), canon);
    }
    vec![
        ("IncSCC", t_inc.as_secs_f64()),
        ("IncSCCn", t_incn.as_secs_f64()),
        ("Tarjan", t_batch.as_secs_f64()),
        ("DynSCC", t_dyn.as_secs_f64()),
    ]
}

/// Measure ISO algorithms on one instance.
pub fn iso_point(
    g: &DynamicGraph,
    p: &Pattern,
    delta: &UpdateBatch,
    verify: bool,
) -> Vec<(&'static str, f64)> {
    let base = IncIso::new(g, p.clone());

    let mut inc = base.clone();
    let mut g_inc = g.clone();
    let (_, t_inc) = time(|| {
        g_inc.apply_batch(delta);
        inc.apply(&g_inc, delta);
    });

    let mut incn = base.clone();
    let mut g_n = g.clone();
    let (_, t_incn) = time(|| apply_one_by_one(&mut incn, &mut g_n, delta));

    // As with RPQ, the batch column rebuilds the indexed match set (VF2
    // enumeration + the edge index the maintained state carries).
    let (fresh, t_batch) = time(|| IncIso::new(&g_inc, p.clone()));
    if verify {
        assert_eq!(
            inc.sorted_matches(),
            fresh.sorted_matches(),
            "IncISO diverged from VF2"
        );
        assert_eq!(incn.sorted_matches(), fresh.sorted_matches());
    }
    vec![
        ("IncISO", t_inc.as_secs_f64()),
        ("IncISOn", t_incn.as_secs_f64()),
        ("VF2", t_batch.as_secs_f64()),
    ]
}

// ---------------------------------------------------------------------
// Figure 8(a)–(i): varying |ΔG|
// ---------------------------------------------------------------------

/// Which query class a figure sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Keyword search.
    Kws,
    /// Regular path queries.
    Rpq,
    /// Strongly connected components.
    Scc,
    /// Subgraph isomorphism.
    Iso,
}

/// Generic Exp-1 sweep: vary |ΔG| from 5 % to 40 % of |E| at ρ = 1.
pub fn fig8_deltag(class: Class, data: Dataset, cfg: &ExpConfig, title: &str) -> Series {
    let g = workloads::dataset(data, cfg.scale);
    let mut rows = Vec::new();
    for (i, &frac) in DELTAG_FRACS.iter().enumerate() {
        let delta = delta_for(&g, frac, 0.5, i as u64);
        let times = match class {
            Class::Kws => kws_point(&g, &workloads::default_kws(), &delta, cfg.verify),
            Class::Rpq => rpq_point(
                &g,
                &workloads::default_rpq(data.alphabet()),
                &delta,
                cfg.verify,
            ),
            Class::Scc => scc_point(&g, &delta, cfg.verify),
            Class::Iso => iso_point(&g, &workloads::default_iso(), &delta, cfg.verify),
        };
        rows.push(Row {
            x: pct(frac),
            times,
        });
    }
    Series {
        title: title.to_owned(),
        x_label: "|ΔG|/|G|",
        unit: "s",
        rows,
    }
}

// ---------------------------------------------------------------------
// Figure 8(j)–(l): varying the query
// ---------------------------------------------------------------------

/// Fig 8(j): KWS queries `(m, b)` from `(2,1)` to `(6,5)`, |ΔG| = 10 %.
pub fn fig8j(cfg: &ExpConfig) -> Series {
    let g = workloads::dataset(Dataset::DbpediaLike, cfg.scale);
    let delta = delta_for(&g, 0.10, 0.5, 99);
    let mut rows = Vec::new();
    for (m, b) in [(2, 1), (3, 2), (4, 3), (5, 4), (6, 5)] {
        let q = workloads::kws_query(m, b);
        rows.push(Row {
            x: format!("({m},{b})"),
            times: kws_point(&g, &q, &delta, cfg.verify),
        });
    }
    Series {
        title: "Fig 8(j) Varying Q, KWS (DBpedia-like)".into(),
        x_label: "(m,b)",
        unit: "s",
        rows,
    }
}

/// Fig 8(k): RPQ sizes 3…7, |ΔG| = 10 %.
pub fn fig8k(cfg: &ExpConfig) -> Series {
    let g = workloads::dataset(Dataset::DbpediaLike, cfg.scale);
    let delta = delta_for(&g, 0.10, 0.5, 98);
    let mut rows = Vec::new();
    for size in 3..=7 {
        let q = workloads::rpq_query(size, Dataset::DbpediaLike.alphabet());
        rows.push(Row {
            x: format!("{size}"),
            times: rpq_point(&g, &q, &delta, cfg.verify),
        });
    }
    Series {
        title: "Fig 8(k) Varying Q, RPQ (DBpedia-like)".into(),
        x_label: "|Q|",
        unit: "s",
        rows,
    }
}

/// Fig 8(l): ISO patterns `(3,5,1)…(7,9,5)`, |ΔG| = 10 %.
pub fn fig8l(cfg: &ExpConfig) -> Series {
    let g = workloads::dataset(Dataset::DbpediaLike, cfg.scale);
    let delta = delta_for(&g, 0.10, 0.5, 97);
    let mut rows = Vec::new();
    for n in 3..=7 {
        let p = workloads::iso_pattern(n);
        rows.push(Row {
            x: format!("({},{},{})", n, p.edge_count(), n - 2),
            times: iso_point(&g, &p, &delta, cfg.verify),
        });
    }
    Series {
        title: "Fig 8(l) Varying Q, ISO (DBpedia-like)".into(),
        x_label: "(|VQ|,|EQ|,dQ)",
        unit: "s",
        rows,
    }
}

// ---------------------------------------------------------------------
// Figure 8(m)–(p): varying |G|
// ---------------------------------------------------------------------

/// Generic Exp-3 sweep: scale factors 0.2…1.0 of the synthetic dataset with
/// a fixed absolute |ΔG| (10 % of the full-scale edge count, mirroring the
/// paper's fixed 15M updates).
pub fn fig8_scale(class: Class, cfg: &ExpConfig, title: &str) -> Series {
    let full_edges = workloads::dataset(Dataset::Synthetic, cfg.scale).edge_count();
    let fixed_updates = ((full_edges as f64) * 0.10).round() as usize;
    let mut rows = Vec::new();
    for factor in [0.2, 0.4, 0.6, 0.8, 1.0] {
        let g = workloads::dataset(Dataset::Synthetic, cfg.scale * factor);
        let count = fixed_updates.min(g.edge_count());
        let delta = random_update_batch(&g, count, 0.5, GRAPH_SEED ^ 0xf1);
        let times = match class {
            Class::Kws => kws_point(&g, &workloads::default_kws(), &delta, cfg.verify),
            Class::Rpq => rpq_point(
                &g,
                &workloads::default_rpq(Dataset::Synthetic.alphabet()),
                &delta,
                cfg.verify,
            ),
            Class::Scc => scc_point(&g, &delta, cfg.verify),
            Class::Iso => iso_point(&g, &workloads::default_iso(), &delta, cfg.verify),
        };
        rows.push(Row {
            x: format!("{factor}"),
            times,
        });
    }
    Series {
        title: title.to_owned(),
        x_label: "scale factor",
        unit: "s",
        rows,
    }
}

// ---------------------------------------------------------------------
// In-text experiments
// ---------------------------------------------------------------------

/// Exp-1(5): unit updates — one insertion and one deletion per class.
pub fn unit_updates(cfg: &ExpConfig) -> Series {
    let g = workloads::dataset(Dataset::DbpediaLike, cfg.scale);
    let mut rows = Vec::new();
    for (kind, rho) in [("insert", 1.0), ("delete", 0.0)] {
        let delta = random_update_batch(&g, 1, rho, GRAPH_SEED ^ 0xabc);
        let mut times = Vec::new();
        for (name, t) in kws_point(&g, &workloads::default_kws(), &delta, cfg.verify) {
            if name != "IncKWSn" {
                times.push((name, t));
            }
        }
        for (name, t) in rpq_point(&g, &workloads::default_rpq(495), &delta, cfg.verify) {
            if name != "IncRPQn" {
                times.push((name, t));
            }
        }
        for (name, t) in scc_point(&g, &delta, cfg.verify) {
            if name != "IncSCCn" {
                times.push((name, t));
            }
        }
        for (name, t) in iso_point(&g, &workloads::default_iso(), &delta, cfg.verify) {
            if name != "IncISOn" {
                times.push((name, t));
            }
        }
        rows.push(Row {
            x: kind.to_owned(),
            times,
        });
    }
    Series {
        title: "Unit updates (Exp-1(5)): incremental vs batch per class".into(),
        x_label: "unit update",
        unit: "s",
        rows,
    }
}

/// ρ-sensitivity: fixed |ΔG| = 10 %, insertion fraction varied.
pub fn rho_sensitivity(cfg: &ExpConfig) -> Series {
    let g = workloads::dataset(Dataset::DbpediaLike, cfg.scale);
    let mut rows = Vec::new();
    for rho in [0.2, 0.4, 0.5, 0.6, 0.8] {
        let delta = delta_for(&g, 0.10, rho, (rho * 100.0) as u64);
        let times = vec![
            (
                "IncKWS",
                kws_point(&g, &workloads::default_kws(), &delta, cfg.verify)[0].1,
            ),
            (
                "IncRPQ",
                rpq_point(&g, &workloads::default_rpq(495), &delta, cfg.verify)[0].1,
            ),
            ("IncSCC", scc_point(&g, &delta, cfg.verify)[0].1),
            (
                "IncISO",
                iso_point(&g, &workloads::default_iso(), &delta, cfg.verify)[0].1,
            ),
        ];
        rows.push(Row {
            x: format!("{rho}"),
            times,
        });
    }
    Series {
        title: "ρ-sensitivity: fixed |ΔG| = 10%, varying insert fraction".into(),
        x_label: "insert fraction",
        unit: "s",
        rows,
    }
}

/// Theorem 1 made visible: on the Fig. 9 two-cycle gadget, the first
/// insertion changes no output (`|CHANGED| = 1`) while the affected
/// markings grow linearly with the gadget size — the "undoable" shape.
pub fn undoable_demo() -> Series {
    let mut rows = Vec::new();
    for n in [25usize, 50, 100, 200] {
        let gadget = igc_core::gadgets::two_cycle_gadget(n);
        let mut interner = gadget.interner.clone();
        let q = Regex::parse(gadget.query, &mut interner).expect("gadget query parses");
        let mut g = gadget.graph.clone();
        let mut inc = IncRpq::new(&g, &q);
        let before = inc.answer().len();
        let delta = UpdateBatch::from_updates(vec![gadget.delta1]);
        g.apply_batch(&delta);
        inc.apply(&g, &delta);
        assert_eq!(inc.answer().len(), before, "Δ1 must not change the output");
        let m = inc.last_metrics();
        rows.push(Row {
            x: format!("n={n}"),
            times: vec![
                ("CHANGED", m.changed() as f64),
                ("AFF(markings)", (m.affected.max(1)) as f64),
            ],
        });
    }
    Series {
        title: "Undoable (Thm 1): two-cycle gadget — |AFF| grows, |CHANGED| stays 1".into(),
        x_label: "gadget size",
        unit: "count",
        rows,
    }
}

/// Localizability check: fixed small |ΔG|, growing |G| — the *work
/// counters* of IncKWS and IncISO must stay (statistically) flat.
pub fn locality_demo(cfg: &ExpConfig) -> Series {
    let mut rows = Vec::new();
    for factor in [0.25, 0.5, 1.0, 2.0] {
        let g = workloads::dataset(Dataset::Synthetic, cfg.scale * factor);
        let delta = random_update_batch(&g, 100, 0.5, GRAPH_SEED ^ 0x10c);
        let mut g2 = g.clone();

        let mut kws = IncKws::new(&g, workloads::default_kws());
        kws.reset_work();
        g2.apply_batch(&delta);
        kws.apply(&g2, &delta);

        let mut iso = IncIso::new(&g, workloads::default_iso());
        iso.reset_work();
        iso.apply(&g2, &delta);

        rows.push(Row {
            x: format!("{factor}×"),
            times: vec![
                ("IncKWS work", kws.work().total() as f64),
                ("IncISO work", iso.work().total() as f64),
                ("|G|", g.size() as f64),
            ],
        });
    }
    Series {
        title: "Localizable (Thm 3): work vs |G| at fixed |ΔG| = 100 updates".into(),
        x_label: "graph scale",
        unit: "ops",
        rows,
    }
}

// ---------------------------------------------------------------------
// Engine commit series (multi-view serving trajectory)
// ---------------------------------------------------------------------

/// Result of the engine experiment: a printable series and the
/// machine-readable JSON the binary writes to `BENCH_engine.json`, so the
/// perf trajectory accumulates across PRs.
#[derive(Debug, Clone)]
pub struct EngineRun {
    /// Per-commit latency table for terminal display.
    pub series: Series,
    /// The same data as a JSON document (per-commit latency series with
    /// per-view breakdown and engine totals).
    pub json: String,
}

/// Number of commits the engine experiment drives.
pub const ENGINE_COMMITS: usize = 12;

/// Number of lockstep commits in the sequential-vs-parallel comparison
/// appended to the engine experiment's JSON.
pub const COMPARE_COMMITS: usize = 8;

/// A deliberately buggy fifth view registered alongside the four default
/// ones: panics on its 3rd `apply`, so the serving trajectory exercises —
/// and `BENCH_engine.json` records — a real quarantine event.
#[derive(Clone)]
struct EngineCanary {
    applies: u64,
}

impl igc_core::IncView for EngineCanary {
    fn name(&self) -> &str {
        "canary"
    }
    fn apply(&mut self, _g: &DynamicGraph, _delta: &UpdateBatch) {
        self.applies += 1;
        if self.applies == 3 {
            panic!("canary: deliberate failure on apply #3");
        }
    }
    fn work(&self) -> WorkStats {
        WorkStats::new()
    }
    fn reset_work(&mut self) {}
    fn verify_against_batch(&self, _g: &DynamicGraph) -> Result<(), String> {
        Ok(())
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn clone_view(&self) -> Box<dyn igc_core::IncView> {
        Box::new(self.clone())
    }
}

/// Run `f` with the default panic hook silenced, so the canary's deliberate
/// (engine-caught) panic does not write a backtrace into the experiment
/// output. The hook is global process state: a mutex serializes concurrent
/// users (the library tests run threaded), and a drop guard restores the
/// previous hook even if `f` itself panics, so a genuine failure elsewhere
/// keeps its diagnostics.
fn quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    use std::panic::PanicHookInfo;
    use std::sync::{Mutex, MutexGuard};
    type PrevHook = Box<dyn Fn(&PanicHookInfo<'_>) + Sync + Send>;
    static HOOK_LOCK: Mutex<()> = Mutex::new(());
    struct Restore<'a> {
        prev: Option<PrevHook>,
        _serialize: MutexGuard<'a, ()>,
    }
    impl Drop for Restore<'_> {
        fn drop(&mut self) {
            if let Some(prev) = self.prev.take() {
                std::panic::set_hook(prev);
            }
        }
    }
    let guard = match HOOK_LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let _restore = Restore {
        prev: Some(prev),
        _serialize: guard,
    };
    f()
}

/// The sequential-vs-parallel fan-out comparison: the four default views
/// cloned into two engines over the same starting graph, driven in lockstep
/// through [`COMPARE_COMMITS`] identical commits — one engine sequential,
/// one `CommitMode::Parallel`. Records each commit's *view latency sum*
/// (the fan-out cost parallelism targets; normalization and the graph
/// apply are mode-independent) plus wall-clock medians and the speedup.
/// With `verify` on, both engines' receipts are cross-checked for equal
/// work and the final views audited — the comparison doubles as an
/// equivalence test at experiment scale.
///
/// The parallel side always uses at least 2 workers: a 1-thread "parallel"
/// engine runs its fan-out inline by construction, and recording a
/// sequential-vs-sequential pair as a speedup datapoint would pollute the
/// accumulated trajectory.
fn engine_compare(cfg: &ExpConfig) -> String {
    let threads = cfg.threads.max(2);
    let g = workloads::dataset(Dataset::DbpediaLike, cfg.scale);
    let rpq = IncRpq::new(&g, &workloads::default_rpq(495));
    let scc = IncScc::new(&g);
    let kws = IncKws::new(&g, workloads::default_kws());
    let iso = IncIso::new(&g, workloads::default_iso());
    let mut seq = Engine::new(g.clone());
    let mut par = Engine::new(g);
    par.set_commit_mode(igc_engine::CommitMode::Parallel { threads });
    for e in [&mut seq, &mut par] {
        e.register(rpq.clone()).expect("register rpq");
        e.register(scc.clone()).expect("register scc");
        e.register(kws.clone()).expect("register kws");
        e.register(iso.clone()).expect("register iso");
    }

    let view_sum = |r: &igc_engine::CommitReceipt| -> f64 {
        r.per_view.iter().map(|v| v.elapsed.as_secs_f64()).sum()
    };
    let mut seq_series: Vec<f64> = Vec::with_capacity(COMPARE_COMMITS);
    let mut par_series: Vec<f64> = Vec::with_capacity(COMPARE_COMMITS);
    for i in 0..COMPARE_COMMITS {
        let count = (((seq.graph().edge_count() as f64) * 0.02).round() as usize).max(1);
        let delta = random_update_batch(seq.graph(), count, 0.5, GRAPH_SEED ^ (0xc0 + i as u64));
        let rs = seq.commit(&delta).expect("sequential commit");
        let rp = par.commit(&delta).expect("parallel commit");
        if cfg.verify {
            assert_eq!(rs.work, rp.work, "modes diverged in work at commit {i}");
            assert_eq!(rs.applied, rp.applied);
        }
        seq_series.push(view_sum(&rs));
        par_series.push(view_sum(&rp));
    }
    if cfg.verify {
        seq.verify_all().expect("sequential views audit clean");
        par.verify_all().expect("parallel views audit clean");
    }

    let median = |series: &[f64]| -> f64 {
        let mut s = series.to_vec();
        s.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        s[(s.len() - 1) / 2]
    };
    let fmt_series = |series: &[f64]| -> String {
        series
            .iter()
            .map(|v| format!("{v:.9}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let (ms, mp) = (median(&seq_series), median(&par_series));
    format!(
        "{{\"threads\": {}, \"commits\": {}, \"seq_view_s\": [{}], \"par_view_s\": [{}], \
         \"seq_view_median_s\": {:.9}, \"par_view_median_s\": {:.9}, \
         \"speedup_median\": {:.3}}}",
        threads,
        COMPARE_COMMITS,
        fmt_series(&seq_series),
        fmt_series(&par_series),
        ms,
        mp,
        if mp > 0.0 { ms / mp } else { 0.0 }
    )
}

/// The logged-vs-unlogged lockstep comparison: the four default views
/// cloned into two engines over the same starting graph, driven through
/// [`COMPARE_COMMITS`] identical commits — one engine journaling
/// write-ahead through a file-backed log (checkpoint cadence disabled, so
/// this pins the pure per-commit WAL cost; checkpoints are an amortized,
/// cadence-controlled cost reported separately in the `log` section), one
/// unlogged. Records full commit latencies, medians and the overhead
/// percentage — the durability PR's "< 5 % at scale 0.15" target made
/// measurable. With `verify` on, both engines' receipts are cross-checked
/// and the final views audited.
fn engine_logged_compare(cfg: &ExpConfig, log_dir: &std::path::Path) -> String {
    let g = workloads::dataset(Dataset::DbpediaLike, cfg.scale);
    let rpq = IncRpq::new(&g, &workloads::default_rpq(495));
    let scc = IncScc::new(&g);
    let kws = IncKws::new(&g, workloads::default_kws());
    let iso = IncIso::new(&g, workloads::default_iso());
    let dir = log_dir.join("logged-compare");
    let _ = std::fs::remove_dir_all(&dir);
    let backend: Arc<dyn LogBackend> =
        Arc::new(FileBackend::new(&dir).expect("create comparison log dir"));
    let mut plain = Engine::new(g.clone());
    let mut logged = Engine::new(g)
        .with_log(backend)
        .expect("attach comparison log");
    logged.set_checkpoint_every(0);
    for e in [&mut plain, &mut logged] {
        e.register(rpq.clone()).expect("register rpq");
        e.register(scc.clone()).expect("register scc");
        e.register(kws.clone()).expect("register kws");
        e.register(iso.clone()).expect("register iso");
    }

    let mut plain_series: Vec<f64> = Vec::with_capacity(COMPARE_COMMITS);
    let mut logged_series: Vec<f64> = Vec::with_capacity(COMPARE_COMMITS);
    for i in 0..COMPARE_COMMITS {
        let count = (((plain.graph().edge_count() as f64) * 0.02).round() as usize).max(1);
        let delta = random_update_batch(plain.graph(), count, 0.5, GRAPH_SEED ^ (0xd00 + i as u64));
        let ru = plain.commit(&delta).expect("unlogged commit");
        let rl = logged.commit(&delta).expect("logged commit");
        if cfg.verify {
            assert_eq!(ru.work, rl.work, "logging changed view work at commit {i}");
            assert_eq!(ru.applied, rl.applied);
            assert_eq!(ru.epoch, rl.epoch);
        }
        plain_series.push(ru.elapsed.as_secs_f64());
        logged_series.push(rl.elapsed.as_secs_f64());
    }
    if cfg.verify {
        plain.verify_all().expect("unlogged views audit clean");
        logged.verify_all().expect("logged views audit clean");
    }

    let median = |series: &[f64]| -> f64 {
        let mut s = series.to_vec();
        s.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        s[(s.len() - 1) / 2]
    };
    let fmt_series = |series: &[f64]| -> String {
        series
            .iter()
            .map(|v| format!("{v:.9}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let (mu, ml) = (median(&plain_series), median(&logged_series));
    let overhead_pct = if mu > 0.0 {
        (ml - mu) / mu * 100.0
    } else {
        0.0
    };
    let json = format!(
        "{{\"commits\": {}, \"unlogged_s\": [{}], \"logged_s\": [{}], \
         \"unlogged_median_s\": {:.9}, \"logged_median_s\": {:.9}, \
         \"overhead_pct\": {:.2}}}",
        COMPARE_COMMITS,
        fmt_series(&plain_series),
        fmt_series(&logged_series),
        mu,
        ml,
        overhead_pct
    );
    let _ = std::fs::remove_dir_all(&dir);
    json
}

/// Checkpoint cadence the logged engine experiment runs with — small
/// enough that the 12-commit script crosses several checkpoints.
pub const ENGINE_LOG_CHECKPOINT_EVERY: u64 = 4;

/// Commits each phase of the replication micro-benchmark drives.
pub const REPLICATION_COMMITS: usize = 12;

/// Reads each replica thread issues in the read-throughput sweep.
const REPLICATION_READS: usize = 200;

/// The replication micro-benchmark behind `--replicas N`: a shared
/// in-memory commit log ships a leader's epochs to tailing [`Replica`]s.
/// Three phases, one JSON object:
///
/// * `read_throughput` — 1/2/4 replicas each serving [`REPLICATION_READS`]
///   SCC reads from their own thread at their own frontier (no leader
///   coordination), aggregate reads/s per replica count;
/// * `lag` — `n` followers tail (catch-up poll loop) on worker threads
///   while the leader drives [`REPLICATION_COMMITS`] commits; each poll
///   samples `ReplicaStatus::lag` *before* catching up, recording the
///   worst observed staleness, plus the wall-clock a deliberately stale
///   follower needs to drain the full backlog at the end;
/// * `compaction` — a caught-up pinned follower rides along while the
///   leader compacts after every checkpoint cadence; journal bytes and
///   retained segment counts per cadence show the log staying bounded.
fn engine_replication(cfg: &ExpConfig) -> String {
    use igc_engine::Replica;
    use igc_log::MemBackend;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::{Duration, Instant};

    let followers = cfg.replicas.max(1);
    let build_leader = || {
        let g = workloads::dataset(Dataset::DbpediaLike, cfg.scale);
        let backend = MemBackend::new();
        let mut leader = Engine::new(g)
            .with_log(Arc::new(backend.clone()) as Arc<dyn LogBackend>)
            .expect("attach replication log");
        leader.set_checkpoint_every(ENGINE_LOG_CHECKPOINT_EVERY);
        leader
            .register(IncScc::new(leader.graph()))
            .expect("register scc");
        (backend, leader)
    };
    let commit_one = |leader: &mut Engine, salt: u64| {
        let count = (((leader.graph().edge_count() as f64) * 0.02).round() as usize).max(1);
        let delta = random_update_batch(leader.graph(), count, 0.5, GRAPH_SEED ^ (0x5e9 + salt));
        leader.commit(&delta).expect("leader commit");
    };
    let scc_replica = |leader: &mut Engine| {
        let mut r = leader.replica().expect("attach replica");
        let h = r.register("scc", IncScc::init()).expect("replica scc");
        r.catch_up().expect("initial catch-up");
        (r, h)
    };

    // Phase 1: read throughput at 1/2/4 replicas, each on its own thread.
    let mut throughput_rows = Vec::new();
    for count in [1usize, 2, 4] {
        let (_backend, mut leader) = build_leader();
        for i in 0..4 {
            commit_one(&mut leader, i);
        }
        let mut replicas: Vec<_> = (0..count).map(|_| scc_replica(&mut leader)).collect();
        let start = Instant::now();
        std::thread::scope(|s| {
            for pair in replicas.iter_mut() {
                s.spawn(move || {
                    let (r, h) = pair;
                    let mut acc = 0usize;
                    for _ in 0..REPLICATION_READS {
                        acc += r.view(h).expect("replica read").components().len();
                    }
                    std::hint::black_box(acc);
                });
            }
        });
        let elapsed = start.elapsed().as_secs_f64();
        let reads = (count * REPLICATION_READS) as f64;
        throughput_rows.push(format!(
            "{{\"replicas\": {count}, \"reads\": {}, \"elapsed_s\": {elapsed:.9}, \
             \"reads_per_s\": {:.1}}}",
            reads as u64,
            if elapsed > 0.0 { reads / elapsed } else { 0.0 }
        ));
    }

    // Phase 2: observed lag while followers tail a sustained commit load,
    // plus the drain time of a follower that slept through all of it.
    let (_backend, mut leader) = build_leader();
    let (mut stale, stale_scc) = scc_replica(&mut leader);
    let mut tailing: Vec<_> = (0..followers).map(|_| scc_replica(&mut leader)).collect();
    let stop = AtomicBool::new(false);
    let (observed_max_lag, polls) = std::thread::scope(|s| {
        let handles: Vec<_> = tailing
            .iter_mut()
            .map(|pair| {
                let stop = &stop;
                s.spawn(move || {
                    let (r, _) = pair;
                    let mut max_lag = 0u64;
                    let mut polls = 0u64;
                    loop {
                        let done = stop.load(Ordering::Acquire);
                        // Sample staleness first: the lag a reader would
                        // see right now, before this poll repairs it.
                        if let Ok(st) = r.status() {
                            max_lag = max_lag.max(st.lag);
                        }
                        r.catch_up().expect("tailing catch-up");
                        polls += 1;
                        if done {
                            break;
                        }
                        std::thread::sleep(Duration::from_micros(200));
                    }
                    (max_lag, polls)
                })
            })
            .collect();
        for i in 0..REPLICATION_COMMITS {
            commit_one(&mut leader, 0x100 + i as u64);
        }
        stop.store(true, Ordering::Release);
        handles
            .into_iter()
            .map(|h| h.join().expect("tailing thread"))
            .fold((0u64, 0u64), |(ml, p), (l, q)| (ml.max(l), p + q))
    });
    let backlog = stale.status().expect("stale status").lag;
    let drain_start = Instant::now();
    stale.catch_up().expect("drain backlog");
    let drain_ms = drain_start.elapsed().as_secs_f64() * 1e3;
    let final_lag = stale.status().expect("drained status").lag;
    let leader_scc: ViewHandle<IncScc> = leader
        .typed(leader.find("scc").expect("leader scc"))
        .expect("typed scc handle");
    assert_eq!(
        stale.view(&stale_scc).expect("drained view").components(),
        leader.view(&leader_scc).expect("leader view").components(),
        "drained follower must agree with the leader"
    );
    let lag_json = format!(
        "{{\"followers\": {followers}, \"commits\": {REPLICATION_COMMITS}, \
         \"observed_max_lag_epochs\": {observed_max_lag}, \"polls\": {polls}, \
         \"backlog_epochs\": {backlog}, \"drain_ms\": {drain_ms:.3}, \
         \"final_lag_epochs\": {final_lag}}}"
    );

    // Phase 3: compact after every checkpoint cadence with a caught-up
    // pinned follower attached; the retained journal must stay bounded.
    let (backend, mut leader) = build_leader();
    let (mut rider, _rider_scc) = scc_replica(&mut leader);
    let mut bytes_rows = Vec::new();
    let mut segment_rows = Vec::new();
    let (mut dropped_segments, mut dropped_bytes) = (0u64, 0u64);
    let cadences = 5usize;
    for cadence in 0..cadences {
        for i in 0..ENGINE_LOG_CHECKPOINT_EVERY as usize {
            commit_one(
                &mut leader,
                0x200 + (cadence * ENGINE_LOG_CHECKPOINT_EVERY as usize + i) as u64,
            );
        }
        rider.catch_up().expect("rider catch-up");
        let c = leader.compact_log().expect("compact");
        dropped_segments += u64::from(c.dropped_segments);
        dropped_bytes += c.dropped_bytes;
        bytes_rows.push(leader.log().expect("log").bytes().expect("bytes"));
        segment_rows.push(c.retained_segments);
    }
    let late = Replica::attach(Arc::new(backend.clone()) as Arc<dyn LogBackend>)
        .expect("post-compaction attach");
    assert_eq!(
        late.frontier(),
        leader.epoch(),
        "fresh post-compaction replica seeds at the head"
    );
    let max_retained = segment_rows.iter().copied().max().unwrap_or(0);
    let fmt_u64 = |xs: &[u64]| {
        xs.iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    };
    let compaction_json = format!(
        "{{\"cadences\": {cadences}, \"checkpoint_every\": {ENGINE_LOG_CHECKPOINT_EVERY}, \
         \"bytes_after_compaction\": [{}], \"retained_segments\": [{}], \
         \"dropped_segments_total\": {dropped_segments}, \
         \"dropped_bytes_total\": {dropped_bytes}, \"journal_bounded\": {}}}",
        fmt_u64(&bytes_rows),
        segment_rows
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(", "),
        max_retained <= 2
    );

    format!(
        "{{\"read_throughput\": [{}], \"lag\": {lag_json}, \"compaction\": {compaction_json}}}",
        throughput_rows.join(", ")
    )
}

/// Commit index at which the logged (non-crashing) run spawns its
/// background `rpq:bg` build; it joins after the final commit.
pub const ENGINE_BACKGROUND_SPAWN_AT: usize = 9;

/// Unique throwaway directory for an auto-managed experiment log.
fn temp_log_dir() -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "igc-engine-log-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Submissions each submitter drives in one ingest arm — open loop (each
/// submitter firehoses its whole stream, then awaits every ticket), the
/// sustained-backlog shape coalescing and group commit are built for. A
/// closed loop (one outstanding submission per thread) would measure the
/// OS scheduler's wake-up convoy instead: on few cores the server and all
/// submitters serialize, and per-tick latency is dominated by thread
/// hand-offs rather than by commit or fsync work. The stream is long
/// enough that commit work dominates the few-millisecond thread
/// spawn/wake-up floor every arm pays once.
pub const INGEST_PER_SUBMITTER: usize = 96;

/// Raw units per submission batch in the ingest micro-benchmark.
const INGEST_UNITS: usize = 8;

/// Node pairs in the shared hot pool the ingest streams churn over.
const INGEST_HOT_POOL: u64 = 48;

/// Hot-churn ingest streams: every unit toggles one edge drawn from a
/// small pool of node pairs shared by all submitters. This is the
/// workload shape the coalescing front door is built for: under hot keys,
/// the tick's single `normalize_against` pass collapses cross-submission
/// churn (duplicate inserts, insert/delete flip-flops) to at most one net
/// update per edge, while per-submission commits pay incremental view
/// maintenance for every intermediate state the same edges pass through.
/// (On streams of mostly-disjoint cold updates there is nothing to dedup
/// and coalescing is a wash — the per-commit fixed cost it saves is small
/// next to the view work, which is the same either way.)
fn churn_streams(g: &DynamicGraph, submitters: usize) -> Vec<Vec<UpdateBatch>> {
    use igc_graph::{NodeId, Update};
    let n = g.node_count() as u64;
    let mut state = GRAPH_SEED ^ 0x1A6E57;
    let mut next = move || {
        // splitmix64: tiny, deterministic, and plenty for pool sampling.
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let pool: Vec<(NodeId, NodeId)> = (0..INGEST_HOT_POOL)
        .map(|_| {
            let a = next() % n;
            let mut b = next() % n;
            if a == b {
                b = (b + 1) % n;
            }
            (NodeId(a as u32), NodeId(b as u32))
        })
        .collect();
    (0..submitters)
        .map(|_| {
            (0..INGEST_PER_SUBMITTER)
                .map(|_| {
                    (0..INGEST_UNITS)
                        .map(|_| {
                            let (src, dst) = pool[(next() % INGEST_HOT_POOL) as usize];
                            if next() % 2 == 0 {
                                Update::insert(src, dst)
                            } else {
                                Update::delete(src, dst)
                            }
                        })
                        .collect()
                })
                .collect()
        })
        .collect()
}

/// The ingest micro-benchmark behind `--ingest N`: `N` submitter threads
/// drive identical pre-generated hot-churn streams (see
/// [`churn_streams`]) through an
/// [`IngestServer`](igc_engine::IngestServer) under four arms —
///
/// * `durable_every_append`: per-submission commits (`max_coalesce` 1)
///   with one fsync barrier per WAL record — the classic durable write
///   path;
/// * `durable_group_commit`: coalesced ticks plus
///   [`DurabilityMode::GroupCommit`](igc_log::DurabilityMode) — one
///   barrier covers a whole tick's records;
/// * `volatile_per_submission` / `volatile_coalesced`: the same pair
///   without a log, isolating the coalescing win from the fsync win.
///
/// Each arm records wall clock, submissions/s, p50/p99 submit→receipt
/// latency, commit/append/barrier counts and a receipts-match-submissions
/// audit; durable arms additionally replay their journal and assert the
/// recovered graph is bit-identical. The two headline ratios — durable
/// group-commit vs durable every-append throughput, and coalesced vs
/// per-submission wall clock — are this subsystem's acceptance numbers.
fn engine_ingest(cfg: &ExpConfig) -> String {
    use igc_engine::{IngestConfig, IngestReceipt, IngestServer};
    use igc_log::DurabilityMode;
    use std::time::{Duration, Instant};

    let submitters = cfg.ingest.max(1);
    let g = workloads::dataset(Dataset::DbpediaLike, cfg.scale);
    // Identical pre-generated hot-churn streams for every arm (see
    // [`churn_streams`]): submitters race, so none could see a current
    // graph anyway — the tick's normalization pass is what makes blind
    // resubmission of hot keys safe, and what coalescing monetizes.
    let streams: Vec<Vec<UpdateBatch>> = churn_streams(&g, submitters);

    struct ArmOutcome {
        json: String,
        wall_s: f64,
        subs_per_s: f64,
    }

    let run_arm = |name: &str, durability: Option<DurabilityMode>, max_coalesce: usize| {
        let mut engine = Engine::new(g.clone());
        let dir = durability.map(|_| temp_log_dir());
        let backend: Option<Arc<dyn LogBackend>> = dir.as_ref().map(|d| {
            let _ = std::fs::remove_dir_all(d);
            Arc::new(FileBackend::new(d).expect("create ingest log dir")) as Arc<dyn LogBackend>
        });
        if let Some(b) = &backend {
            engine = engine.with_log(b.clone()).expect("attach ingest log");
            // Cadence checkpoints off: the arms compare append/barrier
            // costs, not checkpoint amortization.
            engine.set_checkpoint_every(0);
        }
        engine
            .register(IncRpq::new(engine.graph(), &workloads::default_rpq(495)))
            .expect("register rpq");
        engine
            .register(IncScc::new(engine.graph()))
            .expect("register scc");
        if let Some(mode) = durability {
            engine.set_durability(mode).expect("set durability");
        }

        let server = IngestServer::spawn_with(
            engine,
            IngestConfig {
                max_coalesce,
                pipeline: true,
                ..IngestConfig::default()
            },
        );
        let start = Instant::now();
        let per_thread: Vec<(Vec<IngestReceipt>, Vec<Duration>, bool)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = streams
                    .iter()
                    .map(|stream| {
                        let ingest = server.handle();
                        scope.spawn(move || {
                            // Burst the stream, then await: each latency is
                            // submit→receipt for that submission, queueing
                            // under backlog included.
                            let tickets: Vec<_> = stream
                                .iter()
                                .map(|batch| {
                                    let t0 = Instant::now();
                                    let ticket =
                                        ingest.submit(batch.clone()).expect("server is up");
                                    (ticket, t0, batch.len())
                                })
                                .collect();
                            let mut receipts = Vec::with_capacity(stream.len());
                            let mut latencies = Vec::with_capacity(stream.len());
                            let mut echoed = true;
                            for (ticket, t0, units) in tickets {
                                let receipt = ticket.wait().expect("submission committed");
                                latencies.push(t0.elapsed());
                                echoed &= receipt.units == units;
                                receipts.push(receipt);
                            }
                            (receipts, latencies, echoed)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("submitter thread clean"))
                    .collect()
            });
        let wall_s = start.elapsed().as_secs_f64();
        let engine = server.shutdown().expect("server returns the engine");

        let receipts: Vec<&IngestReceipt> = per_thread.iter().flat_map(|(r, _, _)| r).collect();
        let mut latencies: Vec<f64> = per_thread
            .iter()
            .flat_map(|(_, l, _)| l)
            .map(|d| d.as_secs_f64())
            .collect();
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let quantile = |q: f64| latencies[((latencies.len() - 1) as f64 * q).round() as usize];
        let expected = submitters * INGEST_PER_SUBMITTER;
        let receipts_match =
            receipts.len() == expected && per_thread.iter().all(|(_, _, echoed)| *echoed);
        let total_units: usize = receipts.iter().map(|r| r.units).sum();
        let widest = receipts.iter().map(|r| r.coalesced).max().unwrap_or(0);

        if cfg.verify {
            engine.verify_all().expect("ingest arm views audit clean");
        }
        // Durable arms: count appends/barriers and prove the journal
        // replays to the exact served frontier.
        let (appends, barriers, recover_note) = match engine.log() {
            Some(log) => {
                let appends = log.deltas() + log.checkpoints();
                let barriers = log.syncs();
                assert_eq!(
                    log.unsynced_appends(),
                    0,
                    "shutdown leaves a barriered tail"
                );
                let backend = backend.clone().expect("durable arm has a backend");
                let recovered = Engine::recover(backend).expect("recover ingest journal");
                assert_eq!(recovered.epoch(), engine.epoch(), "recovered frontier");
                let matches = recovered.graph().sorted_edges() == engine.graph().sorted_edges();
                assert!(
                    matches,
                    "ingest journal replay diverged from the served graph"
                );
                (
                    appends,
                    barriers,
                    format!(", \"recover_matches\": {matches}"),
                )
            }
            None => (0, 0, String::new()),
        };
        if let Some(d) = &dir {
            let _ = std::fs::remove_dir_all(d);
        }
        let subs_per_s = if wall_s > 0.0 {
            expected as f64 / wall_s
        } else {
            0.0
        };
        let json = format!(
            "{{\"arm\": \"{name}\", \"durable\": {}, \"max_coalesce\": {max_coalesce}, \
             \"submissions\": {expected}, \"units\": {total_units}, \"commits\": {}, \
             \"epochs\": {}, \"widest_tick\": {widest}, \"wall_s\": {wall_s:.9}, \
             \"submissions_per_s\": {subs_per_s:.1}, \"p50_submit_to_receipt_s\": {:.9}, \
             \"p99_submit_to_receipt_s\": {:.9}, \"wal_appends\": {appends}, \
             \"fsync_barriers\": {barriers}, \
             \"receipts_match_submissions\": {receipts_match}{recover_note}}}",
            backend.is_some(),
            engine.commits(),
            engine.epoch(),
            quantile(0.50),
            quantile(0.99),
        );
        ArmOutcome {
            json,
            wall_s,
            subs_per_s,
        }
    };

    let every = run_arm("durable_every_append", Some(DurabilityMode::EveryAppend), 1);
    let group = run_arm(
        "durable_group_commit",
        Some(DurabilityMode::GroupCommit {
            max_batch: 8,
            max_delay: Duration::from_millis(5),
        }),
        64,
    );
    let v_per = run_arm("volatile_per_submission", None, 1);
    let v_coal = run_arm("volatile_coalesced", None, 64);

    let group_speedup = if every.subs_per_s > 0.0 {
        group.subs_per_s / every.subs_per_s
    } else {
        0.0
    };
    let coalesce_speedup = if v_coal.wall_s > 0.0 {
        v_per.wall_s / v_coal.wall_s
    } else {
        0.0
    };
    format!(
        "{{\"submitters\": {submitters}, \"per_submitter\": {INGEST_PER_SUBMITTER}, \
         \"units_per_submission\": {INGEST_UNITS}, \"arms\": [{}, {}, {}, {}], \
         \"group_commit_speedup_vs_every_append\": {group_speedup:.3}, \
         \"coalesced_speedup_vs_per_submission\": {coalesce_speedup:.3}}}",
        every.json, group.json, v_per.json, v_coal.json
    )
}

/// Window length (ticks) of the `--rules N` windowed-streaming workload.
pub const RULES_WINDOW: usize = 8;

/// Backbone size of the `--rules N` workload, as a multiple of the churn
/// region's host count: the persistent infrastructure graph the window
/// storm must *not* make the view re-derive.
pub const RULES_BACKBONE_FACTOR: usize = 48;

/// The rule-view micro-benchmark behind `--rules N`: an [`IncRules`] view
/// maintaining the attack-reachability program over a sliding-window edge
/// stream ([`workloads::WindowedStream`]), committed through its own
/// engine. Three phases, one JSON object:
///
/// * `fill` — [`RULES_WINDOW`] insert-only ticks populate the window
///   (per-commit latency, derived-fact census, oracle audit);
/// * `slide` — `N` steady-state ticks, each one coalesced batch carrying a
///   cohort of insertions *and* the retracted cohort that slid out
///   (per-commit latency plus the view's maintenance counters);
/// * `storm` — half the window retracted in a single coalesced batch,
///   timed against from-scratch re-evaluation of the post-storm graph
///   (naive fixpoint and semi-naive rebuild baselines) — the headline
///   `speedup_vs_naive` number.
///
/// The graph is a persistent backbone ([`RULES_BACKBONE_FACTOR`] × the
/// churn region, entry-anchored corridors that never slide out) with the
/// windowed churn riding in a disjoint host range — the streaming shape
/// the "undoable" side targets: storms retract transient edges only, so
/// incremental work stays bounded by the affected window facts while the
/// from-scratch baselines re-derive the whole database.
///
/// Every phase ends in `verify_all`, so each `audit` field is a real
/// incremental-vs-oracle comparison, not a checksum. The workload `seed`,
/// window and backbone parameters are recorded so a run is reproducible
/// from its JSON alone.
fn engine_rules(cfg: &ExpConfig) -> String {
    use igc_rules::{naive_fixpoint, IncRules};
    use std::time::Instant;

    let slide_ticks = cfg.rules.max(1);
    let nodes = ((4000.0 * cfg.scale).round() as usize).max(64);
    let per_tick = nodes; // mean degree ≈ RULES_WINDOW once the window fills
    let backbone = RULES_BACKBONE_FACTOR * nodes;
    let seed = GRAPH_SEED ^ 0x201e5;
    let (program, _exec, goal) = workloads::attack_program();
    let (g, mut ws) =
        workloads::WindowedStream::with_backbone(backbone, nodes, RULES_WINDOW, per_tick, seed);
    let backbone_edges = g.edge_count();

    let mut engine = Engine::new(g);
    engine.set_commit_mode(commit_mode(cfg));
    let rules = engine
        .register(IncRules::new(engine.graph(), program.clone()))
        .expect("register rules view");
    let audit = |engine: &mut Engine| -> String {
        if !cfg.verify {
            return "\"skipped\"".to_owned();
        }
        match engine.verify_all() {
            Ok(()) => "\"pass\"".to_owned(),
            Err(e) => format!("\"fail: {e}\""),
        }
    };

    // Phase 1: fill the window, insert-only ticks.
    let mut fill_s = Vec::with_capacity(RULES_WINDOW);
    for _ in 0..RULES_WINDOW {
        let delta = ws.next_batch();
        let t = Instant::now();
        engine.commit(&delta).expect("fill commit");
        fill_s.push(t.elapsed().as_secs_f64());
    }
    let (fill_facts, fill_goals) = {
        let view = engine.view(&rules).expect("rules view");
        (view.derived_count(), view.facts_of(goal).len())
    };
    let fill_audit = audit(&mut engine);

    // Phase 2: steady-state slides — every commit is a coalesced
    // insert-cohort + retract-cohort batch.
    let mut slide_s = Vec::with_capacity(slide_ticks);
    let mut slide_delta = igc_rules::RulesDelta::default();
    for _ in 0..slide_ticks {
        let delta = ws.next_batch();
        let t = Instant::now();
        engine.commit(&delta).expect("slide commit");
        slide_s.push(t.elapsed().as_secs_f64());
        let d = engine.view(&rules).expect("rules view").last_delta();
        slide_delta.facts_added += d.facts_added;
        slide_delta.facts_removed += d.facts_removed;
        slide_delta.overdeleted += d.overdeleted;
        slide_delta.rederived += d.rederived;
        slide_delta.repairs += d.repairs;
    }
    let slide_audit = audit(&mut engine);

    // Phase 3: the deletion storm — half the window out in one batch.
    let live_before = engine.graph().edge_count();
    let storm = ws.storm(RULES_WINDOW / 2);
    let deleted = storm.len();
    let t = Instant::now();
    engine.commit(&storm).expect("storm commit");
    let storm_s = t.elapsed().as_secs_f64();
    let storm_delta = engine.view(&rules).expect("rules view").last_delta();
    let storm_audit = audit(&mut engine);

    // From-scratch baselines on the post-storm graph.
    let t = Instant::now();
    let oracle = naive_fixpoint(engine.graph(), &program);
    let naive_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let rebuilt = IncRules::new(engine.graph(), program.clone());
    let seminaive_s = t.elapsed().as_secs_f64();
    assert_eq!(
        rebuilt.derived_count(),
        oracle.facts.len(),
        "from-scratch baselines disagree"
    );

    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
    let max = |xs: &[f64]| xs.iter().cloned().fold(0.0f64, f64::max);
    let ratio = |num: f64, den: f64| if den > 0.0 { num / den } else { 0.0 };
    format!(
        "{{\"program\": \"attack_graph\", \"seed\": {seed}, \"nodes\": {nodes}, \
         \"backbone_nodes\": {backbone}, \"backbone_edges\": {backbone_edges}, \
         \"window_ticks\": {RULES_WINDOW}, \"edges_per_tick\": {per_tick}, \
         \"slide_ticks\": {slide_ticks}, \
         \"fill\": {{\"commits\": {RULES_WINDOW}, \"mean_commit_s\": {:.9}, \
         \"max_commit_s\": {:.9}, \"derived_facts\": {fill_facts}, \
         \"goals_reached\": {fill_goals}, \"audit\": {fill_audit}}}, \
         \"slide\": {{\"commits\": {slide_ticks}, \"mean_commit_s\": {:.9}, \
         \"max_commit_s\": {:.9}, \"facts_added\": {}, \"facts_removed\": {}, \
         \"overdeleted\": {}, \"rederived\": {}, \"repairs\": {}, \
         \"audit\": {slide_audit}}}, \
         \"storm\": {{\"live_edges_before\": {live_before}, \"deleted_edges\": {deleted}, \
         \"commit_s\": {storm_s:.9}, \"scratch_naive_s\": {naive_s:.9}, \
         \"scratch_seminaive_s\": {seminaive_s:.9}, \"speedup_vs_naive\": {:.2}, \
         \"speedup_vs_seminaive\": {:.2}, \"facts_removed\": {}, \"overdeleted\": {}, \
         \"rederived\": {}, \"audit\": {storm_audit}}}, \
         \"derived_facts_final\": {}}}",
        mean(&fill_s),
        max(&fill_s),
        mean(&slide_s),
        max(&slide_s),
        slide_delta.facts_added,
        slide_delta.facts_removed,
        slide_delta.overdeleted,
        slide_delta.rederived,
        slide_delta.repairs,
        ratio(naive_s, storm_s),
        ratio(seminaive_s, storm_s),
        storm_delta.facts_removed,
        storm_delta.overdeleted,
        storm_delta.rederived,
        rebuilt.derived_count(),
    )
}

/// The chaos resilience run (`--chaos N`): `N` deterministic seeded fault
/// storms against a logged engine, each measuring the full degradation
/// story end to end:
///
/// * a [`ChaosBackend`](igc_log::ChaosBackend) wraps the journal and
///   executes a seeded [`FaultPlan`](igc_log::FaultPlan) of transient
///   append/read/sync failures and torn half-writes (no bit-flips — those
///   corrupt acknowledged records by design);
/// * the engine runs under a [`RetryPolicy`](igc_log::RetryPolicy); faults
///   inside the budget are absorbed (counted via
///   [`CommitReceipt::log_retries`](igc_engine::CommitReceipt)), faults
///   past it degrade the engine to read-only until
///   [`Engine::heal`](igc_engine::Engine::heal) lands — degraded windows,
///   their wall-clock and the mean time-to-heal are recorded;
/// * a resilient follower tails the same faulted journal throughout
///   (transient-read retries counted), and a dormant unpinned follower
///   that compaction outruns reattaches from the newest checkpoint;
/// * audits: no acknowledged commit is lost (a crash-recovery replays to
///   the leader's exact graph) and the view answers stay bit-identical to
///   a never-faulted twin fed the same acknowledged deltas.
fn engine_chaos(cfg: &ExpConfig) -> String {
    use igc_engine::{EngineError, Replica, TailResilience};
    use igc_log::{ChaosBackend, ChaosProfile, FaultPlan, MemBackend, RetryPolicy};
    use std::sync::atomic::AtomicBool;
    use std::time::Duration;

    const CHAOS_COMMITS: usize = 12;
    let storms = cfg.chaos.max(1);
    let profile = ChaosProfile {
        horizon: 128,
        append_fail: 0.12,
        read_fail: 0.06,
        sync_fail: 0.10,
        torn_fraction: 0.5,
        bit_flip: 0.0,
        max_burst: 3,
    };
    let retry =
        RetryPolicy::retries(2).with_delays(Duration::from_micros(20), Duration::from_micros(200));

    let mut acked = 0u64;
    let mut rejected = 0u64;
    let mut retries_absorbed = 0u64;
    let mut heal_probes_failed = 0u64;
    let mut degraded_windows = 0u64;
    let mut degraded_s = 0.0f64;
    let mut tail_retries = 0u64;
    let mut reattaches = 0u64;
    let (mut append_faults, mut read_faults, mut sync_faults, mut torn_writes) =
        (0u64, 0u64, 0u64, 0u64);
    let mut audit = "\"pass\"".to_owned();
    let mut fail = |what: String| {
        if audit == "\"pass\"" {
            audit = format!("\"fail: {what}\"");
        }
    };

    for storm in 0..storms as u64 {
        let chaos = ChaosBackend::new(Arc::new(MemBackend::new()), FaultPlan::none());
        let g = workloads::dataset(Dataset::DbpediaLike, cfg.scale);
        let mut leader = Engine::new(g.clone())
            .with_log(Arc::new(chaos.clone()) as Arc<dyn LogBackend>)
            .expect("attach chaos log");
        leader.set_checkpoint_every(ENGINE_LOG_CHECKPOINT_EVERY);
        leader.set_retry_policy(retry).expect("set retry policy");
        // Group commit so the storm also exercises the barrier path:
        // sync faults either get absorbed by the policy or surface as
        // sync debt that degrades the engine until healed.
        leader
            .set_durability(igc_log::DurabilityMode::GroupCommit {
                max_batch: 4,
                max_delay: Duration::from_secs(3600),
            })
            .expect("set durability");
        let leader_scc = leader
            .register(IncScc::new(leader.graph()))
            .expect("register scc");
        let mut twin = Engine::new(g);
        let twin_scc = twin
            .register(IncScc::new(twin.graph()))
            .expect("register twin scc");

        // A resilient follower that tails right through the storm, and a
        // dormant unpinned one for compaction to outrun.
        let resilience = TailResilience {
            retry: RetryPolicy::retries(6)
                .with_delays(Duration::from_micros(20), Duration::from_micros(200)),
            reattach: true,
        };
        let mut tailer = leader.replica().expect("attach tailer");
        tailer.set_tail_resilience(resilience);
        let mut dormant = Replica::attach(Arc::new(chaos.clone()) as Arc<dyn LogBackend>)
            .expect("attach dormant");
        dormant.set_tail_resilience(resilience);
        let drained = AtomicBool::new(true); // pre-stopped: tail = one resilient drain

        // The storm proper.
        chaos.set_plan(FaultPlan::seeded(GRAPH_SEED ^ (0xc4a05 + storm), &profile));
        for round in 0..CHAOS_COMMITS {
            let count = (((leader.graph().edge_count() as f64) * 0.02).round() as usize).max(1);
            let delta = random_update_batch(
                leader.graph(),
                count,
                0.5,
                GRAPH_SEED ^ (0xc400 + storm * 100 + round as u64),
            );
            let mut landed = false;
            for _ in 0..500 {
                if leader.is_degraded() {
                    if leader.heal().is_err() {
                        heal_probes_failed += 1; // still inside a window
                    }
                    continue;
                }
                match leader.commit(&delta) {
                    Ok(receipt) => {
                        acked += 1;
                        retries_absorbed += receipt.log_retries;
                        landed = true;
                        break;
                    }
                    Err(EngineError::RetriesExhausted { .. }) => rejected += 1,
                    Err(other) => panic!("chaos storm surfaced {other:?}"),
                }
            }
            assert!(landed, "commit did not land within the plan horizon");
            twin.commit(&delta).expect("twin commit");
            tailer
                .tail(&drained, Duration::from_millis(1))
                .expect("resilient tail");
        }

        // Quiet the storm, settle debt, and audit the whole story.
        chaos.set_plan(FaultPlan::none());
        while leader.is_degraded() {
            leader.heal().expect("heal under a quiet plan");
        }
        leader.sync_log().expect("settle sync debt");
        degraded_windows += leader.degraded_windows();
        degraded_s += leader.degraded_elapsed().as_secs_f64();
        let stats = chaos.stats();
        append_faults += stats.append_faults;
        read_faults += stats.read_faults;
        sync_faults += stats.sync_faults;
        torn_writes += stats.torn_writes;

        if cfg.verify {
            if let Err(e) = leader.verify_all() {
                fail(format!("storm {storm}: leader audit: {e}"));
            }
            // Views bit-identical to the never-faulted twin.
            if leader.view(&leader_scc).expect("leader scc").components()
                != twin.view(&twin_scc).expect("twin scc").components()
            {
                fail(format!("storm {storm}: leader diverged from the twin"));
            }
            // No acked commit lost: recovery replays the exact graph.
            let recovered = Engine::recover(chaos.inner()).expect("recover");
            if recovered.epoch() != leader.epoch()
                || recovered.graph().sorted_edges() != leader.graph().sorted_edges()
            {
                fail(format!("storm {storm}: recovery lost acked commits"));
            }
        }

        // The tailing follower rode the storm out; compaction outruns the
        // dormant one, whose resilient drain reattaches from the newest
        // checkpoint.
        tailer
            .tail(&drained, Duration::from_millis(1))
            .expect("final drain");
        if tailer.frontier() != leader.epoch() {
            fail(format!("storm {storm}: tailer stranded"));
        }
        leader.compact_log().expect("compact");
        dormant
            .tail(&drained, Duration::from_millis(1))
            .expect("dormant reattach drain");
        if dormant.frontier() != leader.epoch() {
            fail(format!("storm {storm}: dormant follower stranded"));
        }
        tail_retries += tailer.tail_retries();
        reattaches += dormant.reattaches();
    }

    let mean_heal_ms = if degraded_windows > 0 {
        degraded_s * 1e3 / degraded_windows as f64
    } else {
        0.0
    };
    format!(
        "{{\"storms\": {storms}, \"commits_per_storm\": {CHAOS_COMMITS}, \
         \"retry_attempts\": {}, \"profile\": {{\"horizon\": {}, \
         \"append_fail\": {}, \"read_fail\": {}, \"sync_fail\": {}, \
         \"torn_fraction\": {}, \"max_burst\": {}}}, \
         \"acked_commits\": {acked}, \"rejected_commits\": {rejected}, \
         \"log_retries_absorbed\": {retries_absorbed}, \
         \"append_faults\": {append_faults}, \"read_faults\": {read_faults}, \
         \"sync_faults\": {sync_faults}, \"torn_writes\": {torn_writes}, \
         \"degraded_windows\": {degraded_windows}, \
         \"degraded_ms\": {:.3}, \"mean_time_to_heal_ms\": {mean_heal_ms:.3}, \
         \"heal_probes_failed\": {heal_probes_failed}, \
         \"replica_tail_retries\": {tail_retries}, \
         \"replica_reattaches\": {reattaches}, \"audit\": {audit}}}",
        retry.max_attempts,
        profile.horizon,
        profile.append_fail,
        profile.read_fail,
        profile.sync_fail,
        profile.torn_fraction,
        profile.max_burst,
        degraded_s * 1e3,
    )
}

/// Number of commits each arm of the MVCC snapshot experiment drives.
const SNAPSHOT_COMMITS: usize = 16;

/// Pinned-reader depth of the copy-on-write arm: the newest
/// `SNAPSHOT_PIN_DEPTH` epochs stay pinned throughout.
const SNAPSHOT_PIN_DEPTH: usize = 4;

/// The MVCC snapshot serving run (`--snapshots N`): the `snapshots`
/// section of `BENCH_engine.json`.
///
/// Three arms over identical DBpedia-like engines (all four view classes
/// registered) fed identical ~2 %-of-edges deltas:
///
/// * **publish** — no pins held: per-commit MVCC bookkeeping (version GC +
///   publication, measured directly by the store) as a share of the median
///   commit. This is the hot-path cost every deployment pays; the audit
///   requires < 5 % of the median commit.
/// * **pinned** — the newest [`SNAPSHOT_PIN_DEPTH`] epochs stay pinned by
///   readers throughout: the first commit after each pin copy-on-writes the
///   shared graph and views, the version GC must still hold the window at
///   ≤ pin-depth + 1, and a pin frozen early in the run must serve
///   bit-identical answers at the end (checked on graph edges + SCC
///   components).
/// * **reader throughput** — `N` reader threads pin-and-read snapshots in a
///   loop (no locks, no coordination) while the writer drives the same
///   commit stream; reports sustained reads/s.
fn engine_snapshots(cfg: &ExpConfig) -> String {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    let readers = cfg.snapshots.max(1);
    let mut audit = "\"pass\"".to_owned();
    let mut fail = |what: String| {
        if audit == "\"pass\"" {
            audit = format!("\"fail: {what}\"");
        }
    };
    let median = |series: &[f64]| -> f64 {
        let mut s = series.to_vec();
        s.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        s[(s.len() - 1) / 2]
    };
    let build = |g: &DynamicGraph| -> Engine {
        let mut e = Engine::new(g.clone());
        e.register(IncRpq::new(e.graph(), &workloads::default_rpq(495)))
            .expect("register rpq");
        e.register(IncScc::new(e.graph())).expect("register scc");
        e.register(IncKws::new(e.graph(), workloads::default_kws()))
            .expect("register kws");
        e.register(IncIso::new(e.graph(), workloads::default_iso()))
            .expect("register iso");
        e
    };
    let g = workloads::dataset(Dataset::DbpediaLike, cfg.scale);
    let deltas: Vec<UpdateBatch> = {
        // Same stream for every arm: sized against the starting graph
        // (ρ = 0.5 keeps the size stable, so the arms stay comparable).
        let count = (((g.edge_count() as f64) * 0.02).round() as usize).max(1);
        (0..SNAPSHOT_COMMITS)
            .map(|i| random_update_batch(&g, count, 0.5, GRAPH_SEED ^ (0x5a4b + i as u64)))
            .collect()
    };

    // Arm 1: publish overhead, no pins. The window must stay at 1 and the
    // store-measured MVCC time must be a sliver of the commit.
    let mut baseline = build(&g);
    let publish_at_start = baseline.snapshot_store().publish_elapsed();
    let mut base_lat = Vec::with_capacity(SNAPSHOT_COMMITS);
    for delta in &deltas {
        let receipt = baseline.commit(delta).expect("baseline commit");
        base_lat.push(receipt.elapsed.as_secs_f64());
        if baseline.snapshot_store().window() != 1 {
            fail(format!(
                "no-pins window is {}, expected 1",
                baseline.snapshot_store().window()
            ));
        }
    }
    let publish_s = (baseline.snapshot_store().publish_elapsed() - publish_at_start).as_secs_f64();
    let publish_per_commit_s = publish_s / SNAPSHOT_COMMITS as f64;
    let base_median = median(&base_lat);
    let publish_overhead_pct = if base_median > 0.0 {
        publish_per_commit_s / base_median * 100.0
    } else {
        0.0
    };
    if publish_overhead_pct >= 5.0 {
        fail(format!(
            "publish overhead {publish_overhead_pct:.3} % of the median commit (target < 5 %)"
        ));
    }

    // Arm 2: the same stream with the newest SNAPSHOT_PIN_DEPTH epochs
    // pinned throughout, plus one pin frozen early and held to the end.
    let mut pinned = build(&g);
    let mut pin_lat = Vec::with_capacity(SNAPSHOT_COMMITS);
    let mut live_pins: std::collections::VecDeque<igc_engine::Snapshot> =
        std::collections::VecDeque::new();
    let mut frozen: Option<(
        igc_engine::Snapshot,
        Vec<igc_graph::Edge>,
        Vec<Vec<igc_graph::NodeId>>,
    )> = None;
    let mut max_window = 0usize;
    let mut window_rows = Vec::with_capacity(SNAPSHOT_COMMITS);
    for (i, delta) in deltas.iter().enumerate() {
        let receipt = pinned.commit(delta).expect("pinned commit");
        pin_lat.push(receipt.elapsed.as_secs_f64());
        live_pins.push_back(pinned.snapshot().expect("pin the new head"));
        if live_pins.len() > SNAPSHOT_PIN_DEPTH {
            live_pins.pop_front();
        }
        if i == 2 {
            let s = pinned.snapshot().expect("freeze a pin");
            let scc: &IncScc = s
                .view_dyn(s.find("scc").expect("scc published"))
                .expect("scc active")
                .as_any()
                .downcast_ref()
                .expect("scc type");
            frozen = Some((s.clone(), s.graph().sorted_edges(), scc.components()));
        }
        let stats = pinned.snapshot_store().retained_stats();
        max_window = max_window.max(stats.versions);
        window_rows.push(format!(
            "{{\"epoch\": {}, \"versions\": {}, \"distinct_graphs\": {}, \
             \"distinct_view_cells\": {}}}",
            receipt.epoch, stats.versions, stats.distinct_graphs, stats.distinct_view_cells
        ));
        // +2, not +1: the frozen pin from commit 2 is a fifth distinct
        // pinned epoch once the sliding window has moved past it.
        let bound = SNAPSHOT_PIN_DEPTH + if i >= 2 { 1 } else { 0 } + 1;
        if stats.versions > bound {
            fail(format!(
                "commit {i}: window {} exceeds pin bound {bound}",
                stats.versions
            ));
        }
    }
    let pin_median = median(&pin_lat);
    let cow_overhead_pct = if base_median > 0.0 {
        (pin_median - base_median) / base_median * 100.0
    } else {
        0.0
    };
    let (frozen_pin, frozen_edges, frozen_scc) = frozen.expect("frozen pin captured");
    if frozen_pin.graph().sorted_edges() != frozen_edges {
        fail("frozen pin's graph drifted".to_owned());
    }
    let scc_now: &IncScc = frozen_pin
        .view_dyn(frozen_pin.find("scc").expect("scc still in the pin"))
        .expect("scc active in the pin")
        .as_any()
        .downcast_ref()
        .expect("scc type");
    if scc_now.components() != frozen_scc {
        fail("frozen pin's scc answers drifted".to_owned());
    }
    if cfg.verify {
        if let Err(e) = pinned.verify_all() {
            fail(format!("pinned-arm live views diverged: {e}"));
        }
    }
    drop(live_pins);
    drop(frozen_pin);

    // Arm 3: reader threads pin-and-read while the writer commits the
    // same stream over the arm-2 engine (its pins just dropped, so the
    // window re-collapses as the commits flow).
    let stop = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicU64::new(0));
    let handles: Vec<std::thread::JoinHandle<()>> = (0..readers)
        .map(|_| {
            let store = Arc::clone(pinned.snapshot_store());
            let stop = Arc::clone(&stop);
            let reads = Arc::clone(&reads);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let Ok(s) = store.snapshot() else { continue };
                    // A real read: resolve a label and touch the graph —
                    // both plain derefs on the pinned version.
                    let _ = s.find("scc");
                    std::hint::black_box(s.graph().edge_count());
                    reads.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();
    let write_start = std::time::Instant::now();
    let count = (((pinned.graph().edge_count() as f64) * 0.02).round() as usize).max(1);
    for i in 0..SNAPSHOT_COMMITS {
        let delta = random_update_batch(
            pinned.graph(),
            count,
            0.5,
            GRAPH_SEED ^ (0x5a4c00 + i as u64),
        );
        pinned.commit(&delta).expect("commit under readers");
    }
    let write_s = write_start.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        let _ = h.join();
    }
    let total_reads = reads.load(Ordering::Relaxed);
    let reads_per_s = if write_s > 0.0 {
        total_reads as f64 / write_s
    } else {
        0.0
    };
    if total_reads == 0 {
        fail("readers made no progress under sustained writes".to_owned());
    }

    format!(
        "{{\"readers\": {readers}, \"commits_per_arm\": {SNAPSHOT_COMMITS}, \
         \"pin_depth\": {SNAPSHOT_PIN_DEPTH}, \
         \"publish\": {{\"median_commit_s\": {base_median:.9}, \
         \"per_commit_s\": {publish_per_commit_s:.9}, \
         \"overhead_pct\": {publish_overhead_pct:.4}}}, \
         \"pinned\": {{\"median_commit_s\": {pin_median:.9}, \
         \"cow_overhead_pct\": {cow_overhead_pct:.3}, \
         \"max_window\": {max_window}, \"window\": [{}]}}, \
         \"reader_throughput\": {{\"threads\": {readers}, \"reads\": {total_reads}, \
         \"writer_elapsed_s\": {write_s:.9}, \"reads_per_s\": {reads_per_s:.1}}}, \
         \"audit\": {audit}}}",
        window_rows.join(", "),
    )
}

/// One churning multi-view serving run with the full v2 lifecycle: the four
/// default views plus a deliberately flaky canary registered on a
/// DBpedia-like graph, `ENGINE_COMMITS` commits of ~2 % of the edges each
/// (ρ = 0.5, so the graph size stays stable), per-commit latency recorded
/// per view. Along the way the canary is quarantined by the engine (commit
/// 3) and later deregistered; the `iso` view is deregistered mid-run and
/// lazily re-registered from the live graph a few commits later. All
/// lifecycle events land in the JSON alongside the latency series. With
/// `verify` on, every surviving view is audited against from-scratch
/// recomputation after the final commit.
///
/// With `cfg.log` the engine journals write-ahead through a file-backed
/// commit log and the run additionally demonstrates a **background** view
/// build (`rpq:bg` spawned at commit [`ENGINE_BACKGROUND_SPAWN_AT`],
/// joined after the last commit, answers cross-checked against the eager
/// `rpq` view); the JSON gains `log` (journal totals + replay-throughput
/// series) and `background` sections. With `cfg.crash_at = Some(n)` the
/// engine is dropped after `n` commits and rebuilt with
/// [`Engine::recover`]; the four classes re-join lazily from the replayed
/// graph and the run serves the remaining commits — the JSON records the
/// crash/recovery in a `recovery` section.
///
/// With `cfg.replicas = n ≥ 1` the JSON additionally gains a
/// `replication` section (see [`engine_replication`](self): read
/// throughput at 1/2/4 replicas, observed tailing lag plus backlog drain
/// time, and per-cadence journal bytes under periodic compaction).
///
/// With `cfg.ingest = n ≥ 1` the JSON additionally gains an `ingest`
/// section (see [`engine_ingest`](self)): `n` concurrent submitters
/// driven through the async front door under four durability/coalescing
/// arms, with throughput, p50/p99 submit→receipt latency and
/// receipts-match-submissions audits.
///
/// With `cfg.rules = n ≥ 1` the JSON additionally gains a `rules` section
/// (see [`engine_rules`](self)): an `IncRules` attack-graph view over a
/// sliding-window edge stream — fill/slide/deletion-storm phases with
/// per-commit latency, maintenance counters, oracle audits, and the
/// storm-phase speedup over from-scratch re-evaluation.
///
/// With `cfg.chaos = n ≥ 1` the JSON additionally gains a `chaos` section
/// (see [`engine_chaos`](self)): `n` deterministic seeded fault storms
/// against a logged engine under a retry policy — absorbed retries,
/// degraded read-only windows with mean time-to-heal, self-healing
/// replica counters, and no-acked-commit-lost + views-bit-identical
/// audits against a never-faulted twin.
///
/// With `cfg.snapshots = n ≥ 1` the JSON additionally gains a `snapshots`
/// section (see [`engine_snapshots`](self)): MVCC publish overhead on the
/// commit hot path (target < 5 % of the median commit), copy-on-write
/// cost and the version-window memory series under held reader pins, and
/// sustained reader throughput from `n` snapshot-pinning threads — with
/// frozen-pin bit-identity and window-bound audits.
pub fn engine_run(cfg: &ExpConfig) -> EngineRun {
    let g = workloads::dataset(Dataset::DbpediaLike, cfg.scale);
    let logging = cfg.log || cfg.crash_at.is_some();
    // Resolve the log directory: user-specified (wiped, kept) or a
    // throwaway temp dir (removed at the end of the run).
    let log_dir = logging.then(|| match &cfg.log_dir {
        Some(dir) => (std::path::PathBuf::from(dir), false),
        None => (temp_log_dir(), true),
    });
    let backend: Option<Arc<dyn LogBackend>> = log_dir.as_ref().map(|(dir, _)| {
        let _ = std::fs::remove_dir_all(dir);
        Arc::new(FileBackend::new(dir).expect("create log directory")) as Arc<dyn LogBackend>
    });

    let mut engine = Engine::new(g);
    if let Some(b) = &backend {
        engine = engine.with_log(b.clone()).expect("attach commit log");
        engine.set_checkpoint_every(ENGINE_LOG_CHECKPOINT_EVERY);
    }
    engine.set_commit_mode(commit_mode(cfg));
    engine
        .register(IncRpq::new(engine.graph(), &workloads::default_rpq(495)))
        .expect("register rpq");
    engine
        .register(IncScc::new(engine.graph()))
        .expect("register scc");
    engine
        .register(IncKws::new(engine.graph(), workloads::default_kws()))
        .expect("register kws");
    engine
        .register(IncIso::new(engine.graph(), workloads::default_iso()))
        .expect("register iso");
    engine
        .register(EngineCanary { applies: 0 })
        .expect("register canary");

    // Column labels come from the registry itself, so adding/reordering
    // views above cannot desynchronize the table. `Row` wants 'static
    // strs; leaking one small string per view per process run is fine. The
    // initial set stays the header for the whole run — lifecycle events
    // remove and re-add views, and absent views report 0 for that commit.
    let view_names: Vec<&'static str> = engine
        .labels()
        .map(|l| &*Box::leak(l.to_string().into_boxed_str()))
        .collect();
    let labels_json = view_names
        .iter()
        .map(|l| format!("\"{l}\""))
        .collect::<Vec<_>>()
        .join(", ");

    let mut rows = Vec::new();
    let mut commits_json: Vec<String> = Vec::new();
    let mut recovery_json: Option<String> = None;
    let mut background: Option<igc_engine::BackgroundBuild<IncRpq>> = None;
    for i in 0..ENGINE_COMMITS {
        // The crash script: after `crash_at` commits, drop the engine
        // cold (mid-stream, no farewell checkpoint) and rebuild it purely
        // from the journal; the four classes re-join lazily from the
        // replayed graph and the run keeps serving.
        if cfg.crash_at == Some(i) {
            let crash_epoch = engine.epoch();
            drop(std::mem::replace(
                &mut engine,
                Engine::new(DynamicGraph::new()),
            ));
            let backend = backend.clone().expect("crash requires the log backend");
            let recover_start = std::time::Instant::now();
            let mut recovered = Engine::recover(backend).expect("recover from journal");
            let replay_s = recover_start.elapsed().as_secs_f64();
            assert_eq!(
                recovered.epoch(),
                crash_epoch,
                "recovered at the crash epoch"
            );
            recovered.set_commit_mode(commit_mode(cfg));
            recovered.set_checkpoint_every(ENGINE_LOG_CHECKPOINT_EVERY);
            recovered
                .register_lazy("rpq", IncRpq::init(workloads::default_rpq(495)))
                .expect("re-register rpq");
            recovered
                .register_lazy("scc", IncScc::init())
                .expect("re-register scc");
            recovered
                .register_lazy("kws", IncKws::init(workloads::default_kws()))
                .expect("re-register kws");
            recovered
                .register_lazy("iso", IncIso::init(workloads::default_iso()))
                .expect("re-register iso");
            if cfg.verify {
                recovered
                    .verify_all()
                    .expect("recovered views audit clean against recomputation");
            }
            let deltas_replayed = recovered.log().map_or(0, |l| l.deltas());
            recovery_json = Some(format!(
                "{{\"crash_after_commits\": {i}, \"crash_at_epoch\": {crash_epoch}, \
                 \"replay_s\": {replay_s:.9}, \"deltas_in_journal\": {deltas_replayed}, \
                 \"reregistered\": [\"rpq\", \"scc\", \"kws\", \"iso\"], \
                 \"audit\": \"clean\"}}"
            ));
            engine = recovered;
        }

        // The lifecycle script, keyed on commit index (epoch = index + 1):
        // the canary quarantines itself at epoch 3 and is deregistered
        // before commit 6; iso is deregistered before commit 4 and lazily
        // re-registered (from the live graph) before commit 8. Every step
        // is guarded on the roster so the script composes with a crash at
        // any point (post-recovery, the canary stays gone and iso is
        // already back).
        if i == 4 {
            if let Some(iso) = engine.find("iso") {
                engine.deregister(iso).expect("deregister iso");
            }
        }
        if i == 6 {
            if let Some(canary) = engine.find("canary") {
                engine.deregister(canary).expect("deregister canary");
            }
        }
        if i == 8 && engine.find("iso").is_none() {
            engine
                .register_lazy("iso", IncIso::init(workloads::default_iso()))
                .expect("lazy re-register iso");
        }
        // The background-build script (logged, non-crashing runs): spawn
        // an off-path `rpq:bg` build; commits keep flowing below while it
        // replays the journal on its worker, and it joins after the final
        // commit.
        if logging && cfg.crash_at.is_none() && i == ENGINE_BACKGROUND_SPAWN_AT {
            background = Some(
                engine
                    .register_background("rpq:bg", IncRpq::init(workloads::default_rpq(495)))
                    .expect("spawn background rpq build"),
            );
        }

        let count = (((engine.graph().edge_count() as f64) * 0.02).round() as usize).max(1);
        let delta =
            random_update_batch(engine.graph(), count, 0.5, GRAPH_SEED ^ (0xe91 + i as u64));

        // Commit 2 (0-based) trips the canary; silence the panic hook for
        // just that commit.
        let receipt = if i == 2 {
            quiet_panics(|| engine.commit(&delta))
        } else {
            engine.commit(&delta)
        }
        .expect("engine commit");

        let mut times: Vec<(&'static str, f64)> = vec![("commit", receipt.elapsed.as_secs_f64())];
        let mut per_view_json = String::new();
        for name in &view_names {
            let v = receipt.per_view.iter().find(|v| &*v.label == *name);
            times.push((name, v.map_or(0.0, |v| v.elapsed.as_secs_f64())));
            if let Some(v) = v {
                if !per_view_json.is_empty() {
                    per_view_json.push_str(", ");
                }
                let quarantined = if v.applied() {
                    ""
                } else {
                    ", \"quarantined\": true"
                };
                per_view_json.push_str(&format!(
                    "\"{}\": {{\"latency_s\": {:.9}, \"work\": {}{}}}",
                    v.label,
                    v.elapsed.as_secs_f64(),
                    v.work.total(),
                    quarantined
                ));
            }
        }
        commits_json.push(format!(
            "    {{\"epoch\": {}, \"submitted\": {}, \"applied\": {}, \"dropped\": {}, \
             \"latency_s\": {:.9}, \"graph_s\": {:.9}, \"skipped_quarantined\": {}, \
             \"per_view\": {{{}}}}}",
            receipt.epoch,
            receipt.submitted,
            receipt.applied,
            receipt.dropped,
            receipt.elapsed.as_secs_f64(),
            receipt.graph_elapsed.as_secs_f64(),
            receipt.skipped_quarantined,
            per_view_json
        ));
        rows.push(Row {
            x: format!("{}", receipt.epoch),
            times,
        });
    }

    // Join the background build: catch `rpq:bg` up on the log tail and
    // splice it in, then cross-check it against the eager `rpq` view that
    // saw every commit live — bit-identical answers or the run fails.
    let background_json = background.map(|build| {
        let spawn_epoch = ENGINE_BACKGROUND_SPAWN_AT as u64;
        let join_start = std::time::Instant::now();
        let bg = engine.join_background(build).expect("join background rpq");
        let join_s = join_start.elapsed().as_secs_f64();
        let eager: ViewHandle<IncRpq> = engine
            .typed(engine.find("rpq").expect("eager rpq live"))
            .expect("rpq handle");
        let identical = engine.view(&bg).expect("bg view").sorted_answer()
            == engine.view(&eager).expect("eager view").sorted_answer();
        if cfg.verify {
            assert!(identical, "background rpq diverged from eager rpq");
        }
        format!(
            "{{\"label\": \"rpq:bg\", \"spawned_before_commit\": {spawn_epoch}, \
             \"joined_at_epoch\": {}, \"join_s\": {join_s:.9}, \
             \"matches_eager\": {identical}}}",
            engine.epoch()
        )
    });

    if cfg.verify {
        if let Err(failures) = engine.verify_all() {
            panic!("engine views diverged from batch recomputation: {failures}");
        }
    }

    // Journal totals plus a replay-throughput series: rebuild the graph
    // at 25/50/75/100 % of the logged history and record how fast
    // checkpoint-restore + tail replay runs.
    let log_json = engine.log().map(|log| {
        let replayer = log.replayer();
        let summary = replayer.summary().expect("log summary");
        let mut replay_rows = Vec::new();
        for quarter in [1u64, 2, 3, 4] {
            let target =
                summary.first_epoch + (summary.last_epoch - summary.first_epoch) * quarter / 4;
            let replay_start = std::time::Instant::now();
            let replayed = replayer.replay_at(target).expect("replay");
            let elapsed = replay_start.elapsed().as_secs_f64();
            let units_per_s = if elapsed > 0.0 {
                replayed.units_applied as f64 / elapsed
            } else {
                0.0
            };
            replay_rows.push(format!(
                "{{\"to_epoch\": {target}, \"base\": {}, \"deltas\": {}, \"units\": {}, \
                 \"elapsed_s\": {elapsed:.9}, \"units_per_s\": {units_per_s:.1}}}",
                replayed.base_epoch, replayed.deltas_applied, replayed.units_applied
            ));
        }
        format!(
            "{{\"checkpoint_every\": {}, \"deltas\": {}, \"checkpoints\": {}, \
             \"units\": {}, \"bytes\": {}, \"torn_tails\": {}, \"replay\": [{}]}}",
            engine.checkpoint_every(),
            summary.deltas,
            summary.checkpoints,
            summary.units,
            summary.bytes,
            summary.torn_tails,
            replay_rows.join(", ")
        )
    });

    let events_json = engine
        .events()
        .iter()
        .map(|e| {
            format!(
                "    {{\"epoch\": {}, \"kind\": \"{}\", \"label\": \"{}\"}}",
                e.epoch,
                e.kind.tag(),
                e.label
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let (mode_tag, threads) = match engine.commit_mode() {
        igc_engine::CommitMode::Sequential => ("sequential", 0),
        igc_engine::CommitMode::Parallel { threads } => ("parallel", threads),
    };
    let comparison_json = engine_compare(cfg);
    // Durability sections, present only on logged / crashed runs.
    let mut extra_sections = String::new();
    if let Some(log) = log_json {
        extra_sections.push_str(&format!("  \"log\": {log},\n"));
    }
    if let Some((dir, _)) = &log_dir {
        let logged_comparison = engine_logged_compare(cfg, dir);
        extra_sections.push_str(&format!("  \"logged_comparison\": {logged_comparison},\n"));
    }
    if let Some(recovery) = recovery_json {
        extra_sections.push_str(&format!("  \"recovery\": {recovery},\n"));
    }
    if let Some(bg) = background_json {
        extra_sections.push_str(&format!("  \"background\": {bg},\n"));
    }
    if cfg.replicas > 0 {
        let replication = engine_replication(cfg);
        extra_sections.push_str(&format!("  \"replication\": {replication},\n"));
    }
    if cfg.ingest > 0 {
        let ingest = engine_ingest(cfg);
        extra_sections.push_str(&format!("  \"ingest\": {ingest},\n"));
    }
    if cfg.rules > 0 {
        let rules = engine_rules(cfg);
        extra_sections.push_str(&format!("  \"rules\": {rules},\n"));
    }
    if cfg.chaos > 0 {
        let chaos = engine_chaos(cfg);
        extra_sections.push_str(&format!("  \"chaos\": {chaos},\n"));
    }
    if cfg.snapshots > 0 {
        let snapshots = engine_snapshots(cfg);
        extra_sections.push_str(&format!("  \"snapshots\": {snapshots},\n"));
    }
    let json = format!(
        "{{\n  \"bench\": \"engine_commit\",\n  \"dataset\": \"dbpedia_like\",\n  \
         \"scale\": {},\n  \"seed\": {},\n  \"mode\": \"{}\",\n  \"threads\": {},\n  \
         \"available_parallelism\": {},\n  \"views\": [{}],\n  \"commits\": [\n{}\n  ],\n  \
         \"events\": [\n{}\n  ],\n  \"comparison\": {},\n{}  \
         \"totals\": {{\"commits\": {}, \"units_applied\": {}, \"units_dropped\": {}, \
         \"latency_s\": {:.9}, \"work\": {}, \"retired_views\": {}}}\n}}\n",
        cfg.scale,
        GRAPH_SEED,
        mode_tag,
        threads,
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        labels_json,
        commits_json.join(",\n"),
        events_json,
        comparison_json,
        extra_sections,
        engine.commits(),
        engine.units_applied(),
        engine.units_dropped(),
        engine.total_elapsed().as_secs_f64(),
        engine.total_work().total(),
        engine.retired().len()
    );

    // An auto-managed (temp-dir) journal is torn down with the run; a
    // user-specified --log-dir is kept for post-mortem replay.
    if let Some((dir, temporary)) = &log_dir {
        if *temporary {
            let _ = std::fs::remove_dir_all(dir);
        }
    }

    EngineRun {
        series: Series {
            title: format!(
                "Engine: {} commits × 4 views + canary (DBpedia-like), per-commit \
                 latency, lifecycle mid-run",
                ENGINE_COMMITS
            ),
            x_label: "epoch",
            unit: "s",
            rows,
        },
        json,
    }
}

/// All figure ids understood by [`run`].
pub const ALL_FIGS: [&str; 16] = [
    "fig8a", "fig8b", "fig8c", "fig8d", "fig8e", "fig8f", "fig8g", "fig8h", "fig8i", "fig8j",
    "fig8k", "fig8l", "fig8m", "fig8n", "fig8o", "fig8p",
];

/// Run one named experiment.
pub fn run(fig: &str, cfg: &ExpConfig) -> Series {
    use Class::*;
    use Dataset::*;
    match fig {
        "fig8a" => fig8_deltag(
            Kws,
            DbpediaLike,
            cfg,
            "Fig 8(a) Varying ΔG, KWS (DBpedia-like)",
        ),
        "fig8b" => fig8_deltag(
            Rpq,
            DbpediaLike,
            cfg,
            "Fig 8(b) Varying ΔG, RPQ (DBpedia-like)",
        ),
        "fig8c" => fig8_deltag(
            Scc,
            DbpediaLike,
            cfg,
            "Fig 8(c) Varying ΔG, SCC (DBpedia-like)",
        ),
        "fig8d" => fig8_deltag(
            Iso,
            DbpediaLike,
            cfg,
            "Fig 8(d) Varying ΔG, ISO (DBpedia-like)",
        ),
        "fig8e" => fig8_deltag(
            Kws,
            LivejournalLike,
            cfg,
            "Fig 8(e) Varying ΔG, KWS (liveJ-like)",
        ),
        "fig8f" => fig8_deltag(
            Rpq,
            LivejournalLike,
            cfg,
            "Fig 8(f) Varying ΔG, RPQ (liveJ-like)",
        ),
        "fig8g" => fig8_deltag(
            Scc,
            LivejournalLike,
            cfg,
            "Fig 8(g) Varying ΔG, SCC (liveJ-like)",
        ),
        "fig8h" => fig8_deltag(
            Iso,
            LivejournalLike,
            cfg,
            "Fig 8(h) Varying ΔG, ISO (liveJ-like)",
        ),
        "fig8i" => fig8_deltag(Scc, Synthetic, cfg, "Fig 8(i) Varying ΔG, SCC (Synthetic)"),
        "fig8j" => fig8j(cfg),
        "fig8k" => fig8k(cfg),
        "fig8l" => fig8l(cfg),
        "fig8m" => fig8_scale(Kws, cfg, "Fig 8(m) Varying G, KWS (Synthetic)"),
        "fig8n" => fig8_scale(Rpq, cfg, "Fig 8(n) Varying G, RPQ (Synthetic)"),
        "fig8o" => fig8_scale(Scc, cfg, "Fig 8(o) Varying G, SCC (Synthetic)"),
        "fig8p" => fig8_scale(Iso, cfg, "Fig 8(p) Varying G, ISO (Synthetic)"),
        "unit" => unit_updates(cfg),
        "rho" => rho_sensitivity(cfg),
        "undoable" => undoable_demo(),
        "locality" => locality_demo(cfg),
        "engine" => engine_run(cfg).series,
        other => panic!("unknown experiment id {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpConfig {
        ExpConfig {
            scale: 0.004,
            ..ExpConfig::default()
        }
    }

    #[test]
    fn kws_point_verifies_at_tiny_scale() {
        let cfg = tiny();
        let g = workloads::dataset(Dataset::DbpediaLike, cfg.scale);
        let delta = delta_for(&g, 0.10, 0.5, 1);
        let times = kws_point(&g, &workloads::default_kws(), &delta, true);
        assert_eq!(times.len(), 3);
    }

    #[test]
    fn scc_point_verifies_at_tiny_scale() {
        let cfg = tiny();
        let g = workloads::dataset(Dataset::Synthetic, cfg.scale);
        let delta = delta_for(&g, 0.10, 0.5, 2);
        let times = scc_point(&g, &delta, true);
        assert_eq!(times.len(), 4);
    }

    #[test]
    fn rpq_and_iso_points_verify_at_tiny_scale() {
        let cfg = tiny();
        let g = workloads::dataset(Dataset::Synthetic, cfg.scale);
        let delta = delta_for(&g, 0.05, 0.5, 3);
        assert_eq!(
            rpq_point(&g, &workloads::default_rpq(100), &delta, true).len(),
            3
        );
        assert_eq!(
            iso_point(&g, &workloads::default_iso(), &delta, true).len(),
            3
        );
    }

    #[test]
    fn undoable_demo_shows_growth() {
        let s = undoable_demo();
        let aff: Vec<f64> = s
            .rows
            .iter()
            .map(|r| {
                r.times
                    .iter()
                    .find(|(n, _)| *n == "AFF(markings)")
                    .unwrap()
                    .1
            })
            .collect();
        assert!(
            aff.last().unwrap() > &(aff[0] * 2.0),
            "AFF must grow with the gadget: {aff:?}"
        );
        let changed: Vec<f64> = s
            .rows
            .iter()
            .map(|r| r.times.iter().find(|(n, _)| *n == "CHANGED").unwrap().1)
            .collect();
        assert!(changed.iter().all(|&c| c == 1.0));
    }

    #[test]
    fn run_accepts_all_ids() {
        // Only check dispatch for the cheap in-text experiments here; the
        // fig8 sweeps are exercised by the experiments binary.
        let _ = run("undoable", &tiny());
    }

    #[test]
    fn engine_run_parallel_mode_is_recorded_and_consistent() {
        let cfg = ExpConfig {
            threads: 2,
            ..tiny()
        };
        let r = engine_run(&cfg);
        assert_eq!(r.series.rows.len(), ENGINE_COMMITS);
        assert!(r.json.contains("\"mode\": \"parallel\""));
        assert!(r.json.contains("\"threads\": 2"));
        // verify=true already audited every surviving view against batch
        // recomputation inside engine_run, under parallel fan-out.
    }

    #[test]
    fn engine_run_with_log_journals_replays_and_joins_background_view() {
        let cfg = ExpConfig {
            log: true,
            ..tiny()
        };
        let r = engine_run(&cfg);
        assert_eq!(r.series.rows.len(), ENGINE_COMMITS);
        // Journal totals and the replay-throughput series.
        assert!(r.json.contains("\"log\": {\"checkpoint_every\": 4"));
        assert!(r.json.contains("\"replay\": [{\"to_epoch\""));
        assert!(r.json.contains("\"units_per_s\""));
        assert!(r.json.contains("\"torn_tails\": 0"));
        // The lockstep logged-vs-unlogged series pins the WAL overhead.
        assert!(r.json.contains("\"logged_comparison\": {\"commits\": 8"));
        assert!(r.json.contains("\"overhead_pct\""));
        // The background build joined and matched the eager rpq view
        // (verify=true would have panicked otherwise).
        assert!(r
            .json
            .contains("\"kind\": \"registered_background\", \"label\": \"rpq:bg\""));
        assert!(r.json.contains("\"matches_eager\": true"));
        // No crash in this run.
        assert!(!r.json.contains("\"recovery\""));
        assert_eq!(r.json.matches('{').count(), r.json.matches('}').count());
        assert_eq!(r.json.matches('[').count(), r.json.matches(']').count());
    }

    #[test]
    fn engine_run_with_replicas_emits_the_replication_section() {
        let cfg = ExpConfig {
            replicas: 2,
            log: true,
            ..tiny()
        };
        let r = engine_run(&cfg);
        assert_eq!(r.series.rows.len(), ENGINE_COMMITS);
        // The three replication phases all land in the JSON.
        assert!(r
            .json
            .contains("\"replication\": {\"read_throughput\": [{\"replicas\": 1"));
        assert!(r.json.contains("{\"replicas\": 2"));
        assert!(r.json.contains("{\"replicas\": 4"));
        assert!(r.json.contains("\"reads_per_s\""));
        assert!(r.json.contains("\"lag\": {\"followers\": 2"));
        assert!(r.json.contains("\"observed_max_lag_epochs\""));
        assert!(r.json.contains("\"drain_ms\""));
        assert!(r.json.contains("\"final_lag_epochs\": 0"));
        // A full sleep-through backlog is exactly the commit count.
        assert!(r
            .json
            .contains(&format!("\"backlog_epochs\": {REPLICATION_COMMITS}")));
        assert!(r.json.contains("\"compaction\": {\"cadences\": 5"));
        assert!(r.json.contains("\"journal_bounded\": true"));
        assert_eq!(r.json.matches('{').count(), r.json.matches('}').count());
        assert_eq!(r.json.matches('[').count(), r.json.matches(']').count());
    }

    #[test]
    fn engine_run_with_rules_emits_the_rules_section() {
        let cfg = ExpConfig { rules: 3, ..tiny() };
        let r = engine_run(&cfg);
        assert_eq!(r.series.rows.len(), ENGINE_COMMITS);
        // All three phases with their audits, plus the reproducibility
        // parameters (seed + window geometry).
        assert!(r.json.contains("\"rules\": {\"program\": \"attack_graph\""));
        assert!(r
            .json
            .contains(&format!("\"seed\": {}", GRAPH_SEED ^ 0x201e5)));
        assert!(r
            .json
            .contains(&format!("\"window_ticks\": {RULES_WINDOW}")));
        assert!(r.json.contains("\"slide_ticks\": 3"));
        assert!(r.json.contains("\"fill\": {\"commits\""));
        assert!(r.json.contains("\"slide\": {\"commits\": 3"));
        assert!(r.json.contains("\"storm\": {\"live_edges_before\""));
        assert!(r.json.contains("\"speedup_vs_naive\""));
        assert_eq!(
            r.json.matches("\"audit\": \"pass\"").count(),
            3,
            "all three rules phases audit against the oracle:\n{}",
            r.json
        );
        assert_eq!(r.json.matches('{').count(), r.json.matches('}').count());
        assert_eq!(r.json.matches('[').count(), r.json.matches(']').count());
    }

    #[test]
    fn engine_run_with_chaos_emits_the_chaos_section() {
        let cfg = ExpConfig { chaos: 2, ..tiny() };
        let r = engine_run(&cfg);
        assert_eq!(r.series.rows.len(), ENGINE_COMMITS);
        assert!(r.json.contains("\"chaos\": {\"storms\": 2"));
        assert!(r.json.contains("\"acked_commits\": 24"), "{}", r.json);
        assert!(r.json.contains("\"degraded_windows\""));
        assert!(r.json.contains("\"replica_tail_retries\""));
        assert!(r.json.contains("\"replica_reattaches\""));
        // The storms must actually storm, the audits must all pass, and
        // nothing acknowledged may be lost.
        assert!(!r.json.contains("\"audit\": \"fail"), "{}", r.json);
        assert!(r.json.contains("\"audit\": \"pass\""));
        assert_eq!(r.json.matches('{').count(), r.json.matches('}').count());
        assert_eq!(r.json.matches('[').count(), r.json.matches(']').count());
    }

    #[test]
    fn engine_run_with_snapshots_emits_the_snapshots_section() {
        let cfg = ExpConfig {
            snapshots: 2,
            ..tiny()
        };
        let r = engine_run(&cfg);
        assert_eq!(r.series.rows.len(), ENGINE_COMMITS);
        assert!(r.json.contains("\"snapshots\": {\"readers\": 2"));
        assert!(r
            .json
            .contains(&format!("\"commits_per_arm\": {SNAPSHOT_COMMITS}")));
        assert!(r
            .json
            .contains(&format!("\"pin_depth\": {SNAPSHOT_PIN_DEPTH}")));
        // All three arms report.
        assert!(r.json.contains("\"publish\": {\"median_commit_s\""));
        assert!(r.json.contains("\"overhead_pct\""));
        assert!(r.json.contains("\"cow_overhead_pct\""));
        assert!(r.json.contains("\"max_window\""));
        assert!(r.json.contains("\"reader_throughput\": {\"threads\": 2"));
        assert!(r.json.contains("\"reads_per_s\""));
        // The audits: frozen pins stay frozen, the version window stays
        // within the pin bound, publish overhead stays under 5 %.
        assert!(!r.json.contains("\"audit\": \"fail"), "{}", r.json);
        assert!(r.json.contains("\"audit\": \"pass\""));
        assert_eq!(r.json.matches('{').count(), r.json.matches('}').count());
        assert_eq!(r.json.matches('[').count(), r.json.matches(']').count());
    }

    #[test]
    fn engine_run_crash_recovers_and_serves_the_rest() {
        let cfg = ExpConfig {
            crash_at: Some(6),
            ..tiny()
        };
        let r = engine_run(&cfg);
        assert_eq!(
            r.series.rows.len(),
            ENGINE_COMMITS,
            "full series despite the crash"
        );
        assert!(r.json.contains("\"recovery\": {\"crash_after_commits\": 6"));
        assert!(r.json.contains("\"crash_at_epoch\": 6"));
        assert!(r.json.contains("\"audit\": \"clean\""));
        // Post-recovery lifecycle re-registrations are journaled events.
        assert!(r
            .json
            .contains("\"kind\": \"registered_lazy\", \"label\": \"rpq\""));
        // The journal keeps growing after recovery: 12 deltas total.
        assert!(r.json.contains("\"deltas\": 12"));
        assert_eq!(r.json.matches('{').count(), r.json.matches('}').count());
        assert_eq!(r.json.matches('[').count(), r.json.matches(']').count());
    }

    #[test]
    fn engine_run_emits_series_events_and_wellformed_json() {
        let r = engine_run(&tiny());
        assert_eq!(r.series.rows.len(), ENGINE_COMMITS);
        // Each row: the total plus one column per initially registered view
        // (absent views report 0 for lifecycle-affected commits).
        assert_eq!(r.series.rows[0].times.len(), 6);
        assert!(r.json.contains("\"bench\": \"engine_commit\""));
        // The workload RNG seed is recorded, so replay/recovery series are
        // reproducible run-to-run.
        assert!(r.json.contains("\"seed\": 20170514"));
        assert!(r
            .json
            .contains("\"views\": [\"rpq\", \"scc\", \"kws\", \"iso\", \"canary\"]"));
        assert!(r.json.contains("\"latency_s\""));
        assert!(r.json.contains("\"totals\""));
        // The scripted lifecycle is journaled: the canary's quarantine, both
        // deregistrations, and iso's lazy re-registration.
        assert!(r
            .json
            .contains("\"kind\": \"quarantined\", \"label\": \"canary\""));
        assert!(r
            .json
            .contains("\"kind\": \"deregistered\", \"label\": \"iso\""));
        assert!(r
            .json
            .contains("\"kind\": \"deregistered\", \"label\": \"canary\""));
        assert!(r
            .json
            .contains("\"kind\": \"registered_lazy\", \"label\": \"iso\""));
        assert!(r.json.contains("\"quarantined\": true"));
        assert!(r.json.contains("\"retired_views\": 2"));
        // Commit-mode provenance and the sequential-vs-parallel comparison.
        assert!(r.json.contains("\"mode\": \"sequential\""));
        assert!(r.json.contains("\"threads\": 0"));
        assert!(r.json.contains("\"available_parallelism\""));
        assert!(r.json.contains("\"comparison\": {\"threads\": 2"));
        assert!(r.json.contains("\"seq_view_median_s\""));
        assert!(r.json.contains("\"speedup_median\""));
        // Balanced braces/brackets — a cheap well-formedness check given
        // no JSON parser is vendored.
        assert_eq!(
            r.json.matches('{').count(),
            r.json.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(r.json.matches('[').count(), r.json.matches(']').count());
        // Commits count in JSON matches the series (every event line also
        // carries an "epoch" key).
        assert_eq!(
            r.json.matches("\"epoch\"").count(),
            ENGINE_COMMITS + r.json.matches("\"kind\"").count()
        );
    }
}
