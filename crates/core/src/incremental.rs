//! The uniform contracts implemented by every incremental algorithm.
//!
//! Two traits live here:
//!
//! * [`IncrementalAlgorithm`] — the original statically-dispatched contract,
//!   kept for direct per-algorithm use (benchmarks, the paper experiments,
//!   and the `Inc*ⁿ` one-by-one drivers),
//! * [`IncView`] — the object-safe *view* contract the multi-view engine
//!   registry is built on: everything `IncrementalAlgorithm` promises, plus
//!   a stable name and a from-scratch consistency audit. Every maintained
//!   query class implements both.

use crate::work::WorkStats;
use igc_graph::{DynamicGraph, UpdateBatch};

/// An incremental algorithm `T_Δ` for some query class (Section 2.2).
///
/// # Contract
///
/// The algorithm is constructed from an initial graph (running its batch
/// counterpart once to build `Q(G)` and the auxiliary structures). To
/// process a batch `ΔG`:
///
/// 1. the **caller** applies `ΔG` to the graph (`g.apply_batch(delta)`),
/// 2. then calls [`IncrementalAlgorithm::apply`] with the *post-update*
///    graph and the batch.
///
/// `delta` must be normalized: the paper assumes w.l.o.g. that no edge is
/// both inserted and deleted in one batch, deletions reference present
/// edges, and insertions reference absent ones. Arbitrary batches can be
/// made to satisfy all three with one
/// [`UpdateBatch::normalize_against`] call against the pre-update graph
/// (the generator produces such batches directly; the engine's commit
/// pipeline normalizes on behalf of every registered view).
pub trait IncrementalAlgorithm {
    /// Process a batch update; `g` already reflects `delta`.
    fn apply(&mut self, g: &DynamicGraph, delta: &UpdateBatch);

    /// Work accumulated since construction (or the last reset).
    fn work(&self) -> WorkStats;

    /// Zero the work counters.
    fn reset_work(&mut self);

    /// Convenience: apply `delta` to `g` and then to `self` in one call.
    fn apply_updating(&mut self, g: &mut DynamicGraph, delta: &UpdateBatch) {
        g.apply_batch(delta);
        self.apply(g, delta);
    }
}

/// A standing query maintained incrementally over a shared dynamic graph —
/// the object-safe contract behind the multi-view engine's registry.
///
/// Where [`IncrementalAlgorithm`] documents a *caller-must-prefilter*
/// protocol (the batch reaching [`IncrementalAlgorithm::apply`] must be
/// normalized), `IncView` is designed for fan-out from a commit pipeline
/// that performs normalization exactly once
/// ([`UpdateBatch::normalize_against`]) before every registered view sees
/// the delta. The same precondition therefore holds for
/// [`IncView::apply`]: `delta` is normalized against the pre-update graph,
/// and `g` already reflects it.
///
/// The trait is object-safe on purpose: an engine holds
/// `Box<dyn IncView>`s of heterogeneous query classes (RPQ, SCC, KWS, ISO,
/// …) in one registry.
///
/// `Send + Sync` are supertraits. `Send` lets the engine's commit pipeline
/// fan a normalized delta out to views on worker threads (each view is
/// touched by exactly one thread per commit, against a shared
/// `&DynamicGraph`); `Sync` lets an MVCC snapshot publish a frozen view
/// behind an `Arc` that any number of reader threads dereference
/// concurrently. Views built from ordinary owned data satisfy both for
/// free; a view holding `Rc`/`Cell`/raw-pointer state must be refactored
/// (or wrapped) before it can register.
///
/// # Quarantine contract
///
/// A view's [`apply`](IncView::apply) may panic (a bug, an unmaintainable
/// corner case, a poisoned auxiliary structure). The engine drives fan-out
/// through [`apply_caught`](IncView::apply_caught), which converts the
/// panic into an `Err` instead of unwinding through the commit pipeline.
/// The contract is:
///
/// * after a panicking `apply`, the view's *logical* state (its answer and
///   auxiliary structures) may be arbitrarily inconsistent, but reading it
///   must remain memory-safe — the ordinary guarantee of safe Rust, so any
///   view written without `unsafe` state manipulation satisfies it for
///   free;
/// * the engine never calls `apply`, `verify_against_batch` or hands out
///   accessors for a quarantined view again; only deregistration (which
///   drops it) is permitted, so the inconsistency is never observed;
/// * `work()` may still be read once, immediately after the panic, to
///   attribute the partial work the view performed before failing; the
///   engine fences that read too — if `work()` also panics, the view is
///   quarantined with zero work attributed instead of unwinding.
///
/// The contract holds unchanged under parallel fan-out: a panic on a worker
/// thread is caught on that worker, the commit joins every worker before
/// journaling, and the quarantine record is identical to what a sequential
/// commit would have produced.
pub trait IncView: Send + Sync {
    /// A stable human-readable identifier for registry listings, receipts
    /// and logs (e.g. `"rpq"`, `"scc:communities"`).
    fn name(&self) -> &str;

    /// An owned deep copy of this view behind a fresh box — the seam MVCC
    /// snapshot publication relies on for copy-on-write: when a pinned
    /// snapshot still shares a view's storage, the engine clones the view
    /// once (here) before mutating it, so the pinned reader keeps serving
    /// the frozen state. For every ordinary view the implementation is
    /// one line: `Box::new(self.clone())` (derive `Clone`). The copy must
    /// be answer-identical and independent — mutating the original must
    /// never affect the clone.
    fn clone_view(&self) -> Box<dyn IncView>;

    /// Process a committed batch; `g` already reflects `delta`, and `delta`
    /// is normalized against the pre-commit graph.
    fn apply(&mut self, g: &DynamicGraph, delta: &UpdateBatch);

    /// [`apply`](IncView::apply) with panic capture — the engine's fan-out
    /// seam behind per-view quarantine.
    ///
    /// Returns `Err(cause)` when `apply` panicked, with the panic payload
    /// rendered by [`panic_cause`]. The default implementation wraps the
    /// call in [`std::panic::catch_unwind`]; the `AssertUnwindSafe` inside
    /// is justified by the quarantine contract in the [trait
    /// docs](IncView#quarantine-contract): a view that panicked is never
    /// used again, so the (safe, but possibly logically inconsistent)
    /// state the panic left behind is unobservable.
    fn apply_caught(&mut self, g: &DynamicGraph, delta: &UpdateBatch) -> Result<(), String> {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.apply(g, delta)))
            .map_err(|payload| panic_cause(payload.as_ref()))
    }

    /// Work accumulated since construction (or the last reset).
    fn work(&self) -> WorkStats;

    /// Zero the work counters.
    fn reset_work(&mut self);

    /// Consistency audit: recompute the view's answer from scratch on `g`
    /// (the batch counterpart the incrementalization was derived from) and
    /// compare. Returns `Err` with a human-readable diagnosis on
    /// divergence. Expensive — intended for tests, canaries and the
    /// engine's `verify_all`, not the hot commit path.
    fn verify_against_batch(&self, g: &DynamicGraph) -> Result<(), String>;

    /// The view as [`Any`](std::any::Any), for snapshot reads of concrete
    /// view state through a type-erased registry
    /// (`view.as_any().downcast_ref::<IncRpq>()`).
    fn as_any(&self) -> &dyn std::any::Any;

    /// Mutable [`Any`](std::any::Any) access (e.g. to raise a KWS bound or
    /// reset a concrete view in place).
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// Render a panic payload (as caught by [`std::panic::catch_unwind`]) into
/// a human-readable cause for quarantine records and error messages.
///
/// `panic!("…")` payloads are `&str` or `String`; anything else (a custom
/// `panic_any` payload) is reported by its opaque presence only.
pub fn panic_cause(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// A deferred view constructor: builds a view's *initial* state from
/// whatever graph it is handed — the seam behind lazy registration, where
/// the engine passes its own current graph so a view can join mid-stream
/// (at any epoch) instead of only at engine construction.
///
/// This is Liu's "initialization from current state" dual of maintenance:
/// the builder runs the view's batch counterpart once on the live graph,
/// after which the engine keeps the view current incrementally.
///
/// Every closure `FnOnce(&DynamicGraph) -> V` where `V: IncView` is a
/// `ViewInit` via the blanket impl, so ad-hoc lambdas work directly; the
/// algorithm crates also export ready-made ones (`IncRpq::init`,
/// `IncScc::init`, `IncKws::init`, `IncIso::init`, `IncRules::init`).
///
/// # Determinism and the epoch contract
///
/// A builder must be a **deterministic function of the graph state** it
/// is handed (plus its own captured query): two calls on graphs with the
/// same nodes, labels and edge set must produce views with identical
/// answers. The durability layer leans on this twice —
///
/// * *recovery*: a crashed engine's graph is replayed from the commit log
///   and views are re-initialized from it; determinism is what makes the
///   recovered answers bit-identical to the lost ones;
/// * *background builds*: the builder runs against a **checkpointed**
///   graph at some epoch `e ≤ now` on a worker thread, and the view is
///   then caught up by replaying the logged deltas `e+1, e+2, …` — the
///   incremental-maintenance invariant (`init at e` + suffix ≡ `init at
///   e'` + shorter suffix) only holds for deterministic builders.
///
/// Builders that consult ambient state (clocks, randomness, I/O) break
/// both equivalences silently; don't.
pub trait ViewInit {
    /// The concrete view type this constructor builds.
    type View: IncView + 'static;

    /// Build the view, consistent with `g` as of this call.
    fn build(self, g: &DynamicGraph) -> Self::View;
}

impl<V: IncView + 'static, F: FnOnce(&DynamicGraph) -> V> ViewInit for F {
    type View = V;

    fn build(self, g: &DynamicGraph) -> V {
        self(g)
    }
}

/// Drive an incremental algorithm one unit update at a time — the paper's
/// `Inc*ⁿ` baselines, which forgo the batch-grouping optimisations. Returns
/// the graph fully updated, with `alg` having processed each unit as a
/// singleton batch.
pub fn apply_one_by_one<A: IncrementalAlgorithm>(
    alg: &mut A,
    g: &mut DynamicGraph,
    delta: &UpdateBatch,
) {
    for u in delta.iter() {
        let single = UpdateBatch::from_updates(vec![*u]);
        g.apply_batch(&single);
        alg.apply(g, &single);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igc_graph::graph::graph_from;
    use igc_graph::{NodeId, Update};

    /// A toy incremental algorithm: maintains the edge count.
    #[derive(Clone)]
    struct EdgeCounter {
        count: usize,
        work: WorkStats,
    }

    impl IncrementalAlgorithm for EdgeCounter {
        fn apply(&mut self, g: &DynamicGraph, delta: &UpdateBatch) {
            self.count = g.edge_count();
            self.work.aux_touched += delta.len() as u64;
        }
        fn work(&self) -> WorkStats {
            self.work
        }
        fn reset_work(&mut self) {
            self.work.reset();
        }
    }

    #[test]
    fn apply_updating_applies_batch_first() {
        let mut g = graph_from(&[0, 0, 0], &[(0, 1)]);
        let mut alg = EdgeCounter {
            count: g.edge_count(),
            work: WorkStats::new(),
        };
        let delta = UpdateBatch::from_updates(vec![
            Update::insert(NodeId(1), NodeId(2)),
            Update::delete(NodeId(0), NodeId(1)),
        ]);
        alg.apply_updating(&mut g, &delta);
        assert_eq!(alg.count, 1);
        assert_eq!(IncrementalAlgorithm::work(&alg).aux_touched, 2);
    }

    impl IncView for EdgeCounter {
        fn name(&self) -> &str {
            "edge-counter"
        }
        fn apply(&mut self, g: &DynamicGraph, delta: &UpdateBatch) {
            IncrementalAlgorithm::apply(self, g, delta);
        }
        fn work(&self) -> WorkStats {
            self.work
        }
        fn reset_work(&mut self) {
            self.work.reset();
        }
        fn verify_against_batch(&self, g: &DynamicGraph) -> Result<(), String> {
            if self.count == g.edge_count() {
                Ok(())
            } else {
                Err(format!(
                    "edge-counter: maintained {} ≠ actual {}",
                    self.count,
                    g.edge_count()
                ))
            }
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
        fn clone_view(&self) -> Box<dyn IncView> {
            Box::new(self.clone())
        }
    }

    #[test]
    fn inc_view_is_object_safe() {
        let mut g = graph_from(&[0, 0], &[]);
        let mut view: Box<dyn IncView> = Box::new(EdgeCounter {
            count: 0,
            work: WorkStats::new(),
        });
        let delta = UpdateBatch::from_updates(vec![Update::insert(NodeId(0), NodeId(1))]);
        g.apply_batch(&delta);
        view.apply(&g, &delta);
        assert_eq!(view.name(), "edge-counter");
        assert!(view.verify_against_batch(&g).is_ok());
        g.apply(&Update::insert(NodeId(1), NodeId(0)));
        let err = view.verify_against_batch(&g).unwrap_err();
        assert!(err.contains("edge-counter"), "diagnosis names the view");
    }

    #[test]
    fn one_by_one_processes_each_unit() {
        let mut g = graph_from(&[0, 0, 0], &[]);
        let mut alg = EdgeCounter {
            count: 0,
            work: WorkStats::new(),
        };
        let delta = UpdateBatch::from_updates(vec![
            Update::insert(NodeId(0), NodeId(1)),
            Update::insert(NodeId(1), NodeId(2)),
        ]);
        apply_one_by_one(&mut alg, &mut g, &delta);
        assert_eq!(alg.count, 2);
        assert_eq!(g.edge_count(), 2);
    }
}
