//! The uniform contract implemented by every incremental algorithm.

use crate::work::WorkStats;
use igc_graph::{DynamicGraph, UpdateBatch};

/// An incremental algorithm `T_Δ` for some query class (Section 2.2).
///
/// # Contract
///
/// The algorithm is constructed from an initial graph (running its batch
/// counterpart once to build `Q(G)` and the auxiliary structures). To
/// process a batch `ΔG`:
///
/// 1. the **caller** applies `ΔG` to the graph (`g.apply_batch(delta)`),
/// 2. then calls [`IncrementalAlgorithm::apply`] with the *post-update*
///    graph and the batch.
///
/// `delta` must be normalized ([`UpdateBatch::normalized`]): the paper
/// assumes w.l.o.g. that no edge is both inserted and deleted in one batch.
/// Deletions of absent edges and insertions of present edges must have been
/// filtered out by the caller (the generator never produces them).
pub trait IncrementalAlgorithm {
    /// Process a batch update; `g` already reflects `delta`.
    fn apply(&mut self, g: &DynamicGraph, delta: &UpdateBatch);

    /// Work accumulated since construction (or the last reset).
    fn work(&self) -> WorkStats;

    /// Zero the work counters.
    fn reset_work(&mut self);

    /// Convenience: apply `delta` to `g` and then to `self` in one call.
    fn apply_updating(&mut self, g: &mut DynamicGraph, delta: &UpdateBatch) {
        g.apply_batch(delta);
        self.apply(g, delta);
    }
}

/// Drive an incremental algorithm one unit update at a time — the paper's
/// `Inc*ⁿ` baselines, which forgo the batch-grouping optimisations. Returns
/// the graph fully updated, with `alg` having processed each unit as a
/// singleton batch.
pub fn apply_one_by_one<A: IncrementalAlgorithm>(
    alg: &mut A,
    g: &mut DynamicGraph,
    delta: &UpdateBatch,
) {
    for u in delta.iter() {
        let single = UpdateBatch::from_updates(vec![*u]);
        g.apply_batch(&single);
        alg.apply(g, &single);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igc_graph::graph::graph_from;
    use igc_graph::{NodeId, Update};

    /// A toy incremental algorithm: maintains the edge count.
    struct EdgeCounter {
        count: usize,
        work: WorkStats,
    }

    impl IncrementalAlgorithm for EdgeCounter {
        fn apply(&mut self, g: &DynamicGraph, delta: &UpdateBatch) {
            self.count = g.edge_count();
            self.work.aux_touched += delta.len() as u64;
        }
        fn work(&self) -> WorkStats {
            self.work
        }
        fn reset_work(&mut self) {
            self.work.reset();
        }
    }

    #[test]
    fn apply_updating_applies_batch_first() {
        let mut g = graph_from(&[0, 0, 0], &[(0, 1)]);
        let mut alg = EdgeCounter {
            count: g.edge_count(),
            work: WorkStats::new(),
        };
        let delta = UpdateBatch::from_updates(vec![
            Update::insert(NodeId(1), NodeId(2)),
            Update::delete(NodeId(0), NodeId(1)),
        ]);
        alg.apply_updating(&mut g, &delta);
        assert_eq!(alg.count, 1);
        assert_eq!(alg.work().aux_touched, 2);
    }

    #[test]
    fn one_by_one_processes_each_unit() {
        let mut g = graph_from(&[0, 0, 0], &[]);
        let mut alg = EdgeCounter {
            count: 0,
            work: WorkStats::new(),
        };
        let delta = UpdateBatch::from_updates(vec![
            Update::insert(NodeId(0), NodeId(1)),
            Update::insert(NodeId(1), NodeId(2)),
        ]);
        apply_one_by_one(&mut alg, &mut g, &delta);
        assert_eq!(alg.count, 2);
        assert_eq!(g.edge_count(), 2);
    }
}
