//! SSRP — single-source reachability to all vertices (Section 3).
//!
//! SSRP asks, for a fixed source `vs`, whether every node `vt` is reachable
//! from `vs`; the answer is a Boolean `r(v)` per node. Ramalingam and Reps
//! \[38\] showed its incremental problem is *unbounded under unit deletions*
//! but *bounded under unit insertions* — the asymmetry the paper highlights,
//! and the anchor of the Δ-reductions proving Theorem 1.
//!
//! This implementation exhibits exactly that profile:
//! * [`Ssrp::insert_edge`] does work proportional to the newly reachable
//!   region (which is `O(|ΔO| + deg)` — bounded),
//! * [`Ssrp::delete_edge`] falls back to recomputation of the reachable set
//!   when the deleted edge was load-bearing (unbounded, as it must be).

use crate::work::WorkStats;
use igc_graph::{DynamicGraph, NodeId};

/// Maintained single-source reachability.
#[derive(Debug, Clone)]
pub struct Ssrp {
    source: NodeId,
    /// `r(v)`: reachable from `source`. Indexed by node id.
    reach: Vec<bool>,
    work: WorkStats,
}

impl Ssrp {
    /// Compute `r(·)` from scratch on `g`.
    pub fn new(g: &DynamicGraph, source: NodeId) -> Self {
        let mut s = Ssrp {
            source,
            reach: Vec::new(),
            work: WorkStats::new(),
        };
        s.recompute(g);
        s
    }

    /// The query answer: `r(v)` for every node.
    pub fn reachable(&self) -> &[bool] {
        &self.reach
    }

    /// `r(v)` for a single node (false for nodes created after the last
    /// update that touched them).
    pub fn is_reachable(&self, v: NodeId) -> bool {
        self.reach.get(v.index()).copied().unwrap_or(false)
    }

    /// The fixed source `vs`.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Work counters.
    pub fn work(&self) -> WorkStats {
        self.work
    }

    /// Process `insert (u, v)`; `g` must already contain the edge.
    ///
    /// Bounded: if `u` is unreachable or `v` already reachable nothing
    /// happens; otherwise a BFS from `v` visits only newly reachable nodes —
    /// each is an output change, so the work is `O(|ΔO| + edges out of ΔO)`.
    pub fn insert_edge(&mut self, g: &DynamicGraph, u: NodeId, v: NodeId) {
        self.grow(g);
        self.work.aux_touched += 2;
        if !self.reach[u.index()] || self.reach[v.index()] {
            return;
        }
        let mut stack = vec![v];
        self.reach[v.index()] = true;
        while let Some(x) = stack.pop() {
            self.work.nodes_visited += 1;
            for &y in g.successors(x) {
                self.work.edges_traversed += 1;
                if !self.reach[y.index()] {
                    self.reach[y.index()] = true;
                    stack.push(y);
                }
            }
        }
    }

    /// Process `delete (u, v)`; `g` must already lack the edge.
    ///
    /// Unbounded: when the deleted edge may have carried reachability
    /// (`r(u) ∧ r(v)`), the reachable set is recomputed — there is no bound
    /// on this in `|CHANGED|`, which is the content of the negative result.
    pub fn delete_edge(&mut self, g: &DynamicGraph, u: NodeId, v: NodeId) {
        self.grow(g);
        self.work.aux_touched += 2;
        if !self.is_reachable(u) || !self.is_reachable(v) {
            return; // the edge carried no reachability
        }
        self.recompute(g);
    }

    fn recompute(&mut self, g: &DynamicGraph) {
        self.reach.clear();
        self.reach.resize(g.node_count(), false);
        if !g.contains_node(self.source) {
            return;
        }
        let mut stack = vec![self.source];
        self.reach[self.source.index()] = true;
        while let Some(x) = stack.pop() {
            self.work.nodes_visited += 1;
            for &y in g.successors(x) {
                self.work.edges_traversed += 1;
                if !self.reach[y.index()] {
                    self.reach[y.index()] = true;
                    stack.push(y);
                }
            }
        }
    }

    fn grow(&mut self, g: &DynamicGraph) {
        if self.reach.len() < g.node_count() {
            self.reach.resize(g.node_count(), false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igc_graph::graph::graph_from;
    use igc_graph::traversal::reachable_from;

    #[test]
    fn batch_matches_oracle() {
        let g = graph_from(&[0; 5], &[(0, 1), (1, 2), (3, 4)]);
        let s = Ssrp::new(&g, NodeId(0));
        assert_eq!(s.reachable(), reachable_from(&g, NodeId(0)).as_slice());
    }

    #[test]
    fn insertion_extends_reachability() {
        let mut g = graph_from(&[0; 5], &[(0, 1), (2, 3), (3, 4)]);
        let mut s = Ssrp::new(&g, NodeId(0));
        assert!(!s.is_reachable(NodeId(4)));
        g.insert_edge(NodeId(1), NodeId(2));
        s.insert_edge(&g, NodeId(1), NodeId(2));
        assert_eq!(s.reachable(), reachable_from(&g, NodeId(0)).as_slice());
        assert!(s.is_reachable(NodeId(4)));
    }

    #[test]
    fn insertion_into_unreachable_region_is_cheap() {
        let mut g = graph_from(&[0; 4], &[(0, 1), (2, 3)]);
        let mut s = Ssrp::new(&g, NodeId(0));
        let before = s.work().nodes_visited;
        g.insert_edge(NodeId(2), NodeId(1));
        s.insert_edge(&g, NodeId(2), NodeId(1)); // 2 is unreachable
        assert_eq!(s.work().nodes_visited, before, "no traversal needed");
        assert_eq!(s.reachable(), reachable_from(&g, NodeId(0)).as_slice());
    }

    #[test]
    fn insertion_work_is_bounded_by_output_change() {
        // Chain 0→1, island 2→3→…→11; insert 1→2: ΔO = 10 nodes.
        let mut edges = vec![(0, 1)];
        for i in 2..11 {
            edges.push((i, i + 1));
        }
        let mut g = graph_from(&[0; 12], &edges);
        let mut s = Ssrp::new(&g, NodeId(0));
        let w0 = s.work().total();
        g.insert_edge(NodeId(1), NodeId(2));
        s.insert_edge(&g, NodeId(1), NodeId(2));
        let dw = s.work().total() - w0;
        // 10 newly reachable nodes, ≤ ~3 counters each
        assert!(dw <= 40, "insertion work {dw} not bounded by change");
    }

    #[test]
    fn deletion_splits_reachability() {
        let mut g = graph_from(&[0; 4], &[(0, 1), (1, 2), (2, 3)]);
        let mut s = Ssrp::new(&g, NodeId(0));
        g.delete_edge(NodeId(1), NodeId(2));
        s.delete_edge(&g, NodeId(1), NodeId(2));
        assert_eq!(s.reachable(), vec![true, true, false, false].as_slice());
    }

    #[test]
    fn deletion_with_alternative_path_keeps_answer() {
        let mut g = graph_from(&[0; 3], &[(0, 1), (1, 2), (0, 2)]);
        let mut s = Ssrp::new(&g, NodeId(0));
        g.delete_edge(NodeId(1), NodeId(2));
        s.delete_edge(&g, NodeId(1), NodeId(2));
        assert_eq!(s.reachable(), vec![true, true, true].as_slice());
    }

    #[test]
    fn deletion_of_irrelevant_edge_is_cheap() {
        let mut g = graph_from(&[0; 4], &[(0, 1), (2, 3)]);
        let mut s = Ssrp::new(&g, NodeId(0));
        let before = s.work().nodes_visited;
        g.delete_edge(NodeId(2), NodeId(3));
        s.delete_edge(&g, NodeId(2), NodeId(3));
        assert_eq!(s.work().nodes_visited, before);
    }

    #[test]
    fn new_nodes_from_updates_are_handled() {
        let mut g = graph_from(&[0], &[]);
        let mut s = Ssrp::new(&g, NodeId(0));
        g.apply(&igc_graph::Update::insert(NodeId(0), NodeId(5)));
        s.insert_edge(&g, NodeId(0), NodeId(5));
        assert!(s.is_reachable(NodeId(5)));
        assert!(!s.is_reachable(NodeId(3)));
    }
}
