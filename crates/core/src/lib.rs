#![warn(missing_docs)]

//! The incremental-computation framework of *Incremental Graph Computations:
//! Doable and Undoable* (Fan, Hu, Tian; SIGMOD 2017).
//!
//! This crate holds everything that is shared between the four query classes
//! and everything that makes the paper's *theory* executable:
//!
//! * [`work`] — work counters ([`work::WorkStats`]) and change metrics
//!   ([`work::ChangeMetrics`]) with which the localizability and relative
//!   boundedness claims are verified empirically,
//! * [`incremental`] — the uniform contract every incremental algorithm in
//!   the workspace implements,
//! * [`ssrp`] — single-source reachability to all vertices, the anchor
//!   problem of the paper's Δ-reductions (unbounded under deletions,
//!   bounded under insertions \[38\]),
//! * [`reductions`] — the Δ-reduction from SSRP to RPQ used in the proof of
//!   Theorem 1, as executable `(f, fi, fo)` functions,
//! * [`gadgets`] — the two-cycle instance family of Fig. 9 behind the
//!   insertion lower bound, for the "undoable" demonstration experiments.

pub mod gadgets;
pub mod incremental;
pub mod reductions;
pub mod ssrp;
pub mod work;

pub use incremental::{panic_cause, IncView, IncrementalAlgorithm, ViewInit};
pub use ssrp::Ssrp;
pub use work::{ChangeMetrics, WorkStats};
