//! Δ-reductions (Section 3): executable `(f, fi, fo)` triples.
//!
//! A Δ-reduction from query class `Q1` to `Q2` maps instances, input updates
//! and output updates in PTIME in `|ΔG1| + |ΔO1|` and `|Q1|`; it preserves
//! boundedness (Lemma 2), so the unboundedness of SSRP under deletions \[38\]
//! transfers to RPQ (and, in the paper's appendix, to SCC).
//!
//! This module implements the SSRP → RPQ reduction used in the proof of
//! Theorem 1: relabel the source node `vs` with `α1` and every other node
//! with `α2`; then `vi` is reachable from `vs` in `G1` iff `(vs, vi)` is a
//! match of `Q2 = α1·α2*` in `G2` — because every `α1`-initial path starts
//! at `vs`. Integration tests run the real RPQ engine over `f(I1)` and check
//! `fo` against a reachability oracle.

use igc_graph::{DynamicGraph, Label, LabelInterner, NodeId, Update, UpdateBatch};

/// The image of an SSRP instance under the reduction's instance mapping `f`.
#[derive(Debug, Clone)]
pub struct SsrpToRpq {
    /// The relabelled graph `G2` (same nodes and edges as `G1`).
    pub graph: DynamicGraph,
    /// Label α1, carried only by the source node.
    pub alpha1: Label,
    /// Label α2, carried by every other node.
    pub alpha2: Label,
    /// The SSRP source `vs`.
    pub source: NodeId,
    /// The query string for `Q2 = α1·α2*` in `Regex::parse` syntax.
    pub query: &'static str,
}

/// The paper's textual form of `Q2` (parse with the interner returned by
/// [`ssrp_to_rpq`]).
pub const SSRP_RPQ_QUERY: &str = "alpha1.alpha2*";

/// Instance mapping `f`: build `(Q2, G2)` from `(G1, vs)`.
///
/// Returns the instance together with the interner that resolves `alpha1` /
/// `alpha2` in [`SSRP_RPQ_QUERY`].
pub fn ssrp_to_rpq(g1: &DynamicGraph, source: NodeId) -> (SsrpToRpq, LabelInterner) {
    let mut interner = LabelInterner::new();
    let alpha1 = interner.intern("alpha1");
    let alpha2 = interner.intern("alpha2");
    let mut g2 = DynamicGraph::with_capacity(g1.node_count(), g1.edge_count());
    for v in g1.nodes() {
        let l = if v == source { alpha1 } else { alpha2 };
        g2.add_node(l);
    }
    for (u, v) in g1.edges() {
        g2.insert_edge(u, v);
    }
    (
        SsrpToRpq {
            graph: g2,
            alpha1,
            alpha2,
            source,
            query: SSRP_RPQ_QUERY,
        },
        interner,
    )
}

/// Input-update mapping `fi`: SSRP updates carry over verbatim (node ids are
/// preserved by `f`; fresh nodes introduced by insertions are labelled α2).
pub fn map_input_updates(r: &SsrpToRpq, delta1: &UpdateBatch) -> UpdateBatch {
    delta1
        .iter()
        .map(|u| match *u {
            Update::Insert { from, to, .. } => {
                Update::insert_labeled(from, to, Some(r.alpha2), Some(r.alpha2))
            }
            Update::Delete { from, to } => Update::delete(from, to),
        })
        .collect()
}

/// A unit change to an RPQ answer: a `(source, target)` match added or
/// removed. Mirrors `ΔO2` without depending on the RPQ crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PairChange {
    /// The match involved.
    pub pair: (NodeId, NodeId),
    /// True when the match was added, false when removed.
    pub added: bool,
}

/// A unit change to an SSRP answer: `r(node)` flipped to `reachable`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReachChange {
    /// The node whose reachability bit changed.
    pub node: NodeId,
    /// The new value of `r(node)`.
    pub reachable: bool,
}

/// Output-update mapping `fo`: translate changes of `Q2(G2)` back to changes
/// of the SSRP answer. Matches not rooted at `vs` cannot occur (all
/// `α1`-paths start there) and are rejected loudly.
pub fn map_output_updates(r: &SsrpToRpq, delta_o2: &[PairChange]) -> Vec<ReachChange> {
    delta_o2
        .iter()
        .map(|c| {
            assert_eq!(
                c.pair.0, r.source,
                "Q2 match not rooted at the SSRP source: the reduction image \
                 admits no such match"
            );
            ReachChange {
                node: c.pair.1,
                reachable: c.added,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use igc_graph::graph::graph_from;
    use igc_graph::traversal::reachable_from;

    /// Oracle: matches of α1·α2* in the reduction image, computed naively
    /// from reachability (the defining property of the reduction).
    fn rpq_matches_oracle(r: &SsrpToRpq) -> Vec<(NodeId, NodeId)> {
        let reach = reachable_from(&r.graph, r.source);
        r.graph
            .nodes()
            .filter(|v| reach[v.index()])
            // α1·α2* requires at least one node; (vs, vs) matches only the
            // single-symbol word α1 ∈ L(α1·α2*): reachable trivially.
            .map(|v| (r.source, v))
            .collect()
    }

    #[test]
    fn instance_mapping_relabels_only() {
        let g1 = graph_from(&[9, 9, 9], &[(0, 1), (1, 2)]);
        let (r, _it) = ssrp_to_rpq(&g1, NodeId(1));
        assert_eq!(r.graph.node_count(), 3);
        assert_eq!(r.graph.sorted_edges(), g1.sorted_edges());
        assert_eq!(r.graph.label(NodeId(1)), r.alpha1);
        assert_eq!(r.graph.label(NodeId(0)), r.alpha2);
        assert_eq!(r.graph.label(NodeId(2)), r.alpha2);
    }

    #[test]
    fn reduction_defining_property_holds() {
        // vi reachable from vs in G1 ⟺ (vs, vi) ∈ Q2(G2).
        let g1 = graph_from(&[0; 6], &[(0, 1), (1, 2), (2, 0), (3, 4)]);
        let (r, _it) = ssrp_to_rpq(&g1, NodeId(0));
        let matches = rpq_matches_oracle(&r);
        let reach = reachable_from(&g1, NodeId(0));
        for v in g1.nodes() {
            assert_eq!(matches.contains(&(NodeId(0), v)), reach[v.index()]);
        }
    }

    #[test]
    fn input_updates_map_one_to_one() {
        let g1 = graph_from(&[0; 3], &[(0, 1)]);
        let (r, _it) = ssrp_to_rpq(&g1, NodeId(0));
        let d1 = UpdateBatch::from_updates(vec![
            Update::insert(NodeId(1), NodeId(2)),
            Update::delete(NodeId(0), NodeId(1)),
        ]);
        let d2 = map_input_updates(&r, &d1);
        assert_eq!(d2.len(), 2);
        let edges: Vec<_> = d2.iter().map(|u| (u.is_insert(), u.edge())).collect();
        assert_eq!(edges[0], (true, (NodeId(1), NodeId(2))));
        assert_eq!(edges[1], (false, (NodeId(0), NodeId(1))));
    }

    #[test]
    fn output_mapping_translates_pairs() {
        let g1 = graph_from(&[0; 3], &[(0, 1)]);
        let (r, _it) = ssrp_to_rpq(&g1, NodeId(0));
        let o = map_output_updates(
            &r,
            &[
                PairChange {
                    pair: (NodeId(0), NodeId(2)),
                    added: true,
                },
                PairChange {
                    pair: (NodeId(0), NodeId(1)),
                    added: false,
                },
            ],
        );
        assert_eq!(
            o,
            vec![
                ReachChange {
                    node: NodeId(2),
                    reachable: true
                },
                ReachChange {
                    node: NodeId(1),
                    reachable: false
                },
            ]
        );
    }

    #[test]
    #[should_panic(expected = "not rooted at the SSRP source")]
    fn output_mapping_rejects_foreign_roots() {
        let g1 = graph_from(&[0; 3], &[(0, 1)]);
        let (r, _it) = ssrp_to_rpq(&g1, NodeId(0));
        map_output_updates(
            &r,
            &[PairChange {
                pair: (NodeId(1), NodeId(2)),
                added: true,
            }],
        );
    }

    #[test]
    fn end_to_end_on_random_updates() {
        // Simulate the full reduction loop with oracles on both sides.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..20 {
            let n = 8;
            let mut edges = Vec::new();
            for u in 0..n {
                for v in 0..n {
                    if u != v && rng.gen_bool(0.2) {
                        edges.push((u, v));
                    }
                }
            }
            let g1 = graph_from(&vec![0; n as usize], &edges);
            let (r, _it) = ssrp_to_rpq(&g1, NodeId(0));

            // one random unit update
            let mut g1b = g1.clone();
            let del = !edges.is_empty() && rng.gen_bool(0.5);
            let upd = if del {
                let (u, v) = edges[rng.gen_range(0..edges.len())];
                Update::delete(NodeId(u), NodeId(v))
            } else {
                Update::insert(NodeId(rng.gen_range(0..n)), NodeId(rng.gen_range(0..n)))
            };
            if upd.edge().0 == upd.edge().1 {
                continue;
            }
            g1b.apply(&upd);

            let before = reachable_from(&g1, NodeId(0));
            let after = reachable_from(&g1b, NodeId(0));

            // ΔO2 from the RPQ side (oracle): pairs added/removed
            let (r_after, _it2) = ssrp_to_rpq(&g1b, NodeId(0));
            let m_before: std::collections::HashSet<_> =
                rpq_matches_oracle(&r).into_iter().collect();
            let m_after: std::collections::HashSet<_> =
                rpq_matches_oracle(&r_after).into_iter().collect();
            let mut delta_o2: Vec<PairChange> = Vec::new();
            for &p in m_after.difference(&m_before) {
                delta_o2.push(PairChange {
                    pair: p,
                    added: true,
                });
            }
            for &p in m_before.difference(&m_after) {
                delta_o2.push(PairChange {
                    pair: p,
                    added: false,
                });
            }

            // fo(ΔO2) must equal the true reachability change.
            let mapped = map_output_updates(&r, &delta_o2);
            for c in &mapped {
                assert_eq!(after[c.node.index()], c.reachable);
                assert_ne!(before[c.node.index()], c.reachable);
            }
            // And it must be complete.
            let flipped: usize = (0..g1b.node_count())
                .filter(|&i| {
                    before.get(i).copied().unwrap_or(false)
                        != after.get(i).copied().unwrap_or(false)
                })
                .count();
            assert_eq!(flipped, mapped.len());
        }
    }
}
