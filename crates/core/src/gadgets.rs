//! The Fig. 9 two-cycle gadget: the instance family behind the RPQ
//! insertion lower bound (proof of Theorem 1).
//!
//! The graph consists of two directed 2n-cycles — `v1 … v2n` labelled `α1`
//! and `u1 … u2n` labelled `α2` — plus a node `w` labelled `α3` hanging off
//! `v1`. Two insertions are considered:
//!
//! * `Δ1 = insert (vn, un)` — bridges the `v`-cycle into the `u`-cycle,
//! * `Δ2 = insert (u1, v1)` — closes the loop back.
//!
//! With the query `Q = α1·α1*·α2·α2*·α1·α3`, the answer is empty on `G`,
//! `G ⊕ Δ1` and `G ⊕ Δ2`, but `G ⊕ Δ1 ⊕ Δ2` has the 2n matches
//! `(vi, w)`. A bounded (locally persistent) incremental algorithm would
//! have to process each of `Δ1`, `Δ2` in O(1) — yet distinguishing the last
//! case requires information to flow across a Θ(n) path: contradiction.
//!
//! *Erratum note:* the paper prints `Q = α1·(α1)*·α2·(α2)*·α3`, but under
//! its own semantics (path label = labels of **all** nodes, and `w` attached
//! to `v1`) the closing hop `u1 → v1 → w` contributes `α1·α3`, so the query
//! must end `…α2*·α1·α3` for `Q(G3) = {(vi, w)}` as claimed. We use the
//! corrected query; the lower-bound structure is unchanged.

use igc_graph::{DynamicGraph, LabelInterner, NodeId, Update};

/// The Fig. 9 instance: graph, query and the two critical insertions.
#[derive(Debug, Clone)]
pub struct TwoCycleGadget {
    /// The gadget graph (two 2n-cycles plus `w`).
    pub graph: DynamicGraph,
    /// Query string in `Regex::parse` syntax: `a1.a1*.a2.a2*.a1.a3`.
    pub query: &'static str,
    /// Interner resolving `a1`, `a2`, `a3`.
    pub interner: LabelInterner,
    /// `Δ1 = insert (vn, un)`.
    pub delta1: Update,
    /// `Δ2 = insert (u1, v1)`.
    pub delta2: Update,
    /// The target node `w`.
    pub w: NodeId,
    /// The cycle half-length `n` (cycles have `2n` nodes each).
    pub n: usize,
}

/// The corrected query (see module erratum note).
pub const TWO_CYCLE_QUERY: &str = "a1.a1*.a2.a2*.a1.a3";

/// Build the gadget for a given `n ≥ 1`.
///
/// Node layout: `v1..v2n` are ids `0..2n-1`, `u1..u2n` are ids `2n..4n-1`,
/// `w` is id `4n`.
pub fn two_cycle_gadget(n: usize) -> TwoCycleGadget {
    assert!(n >= 1);
    let mut interner = LabelInterner::new();
    let a1 = interner.intern("a1");
    let a2 = interner.intern("a2");
    let a3 = interner.intern("a3");
    let mut g = DynamicGraph::with_capacity(4 * n + 1, 4 * n + 1);
    let vs: Vec<NodeId> = (0..2 * n).map(|_| g.add_node(a1)).collect();
    let us: Vec<NodeId> = (0..2 * n).map(|_| g.add_node(a2)).collect();
    let w = g.add_node(a3);
    for i in 0..2 * n {
        g.insert_edge(vs[i], vs[(i + 1) % (2 * n)]);
        g.insert_edge(us[i], us[(i + 1) % (2 * n)]);
    }
    g.insert_edge(vs[0], w);
    TwoCycleGadget {
        graph: g,
        query: TWO_CYCLE_QUERY,
        interner,
        // vn is vs[n-1], un is us[n-1], u1 is us[0], v1 is vs[0]
        delta1: Update::insert(vs[n - 1], us[n - 1]),
        delta2: Update::insert(us[0], vs[0]),
        w,
        n,
    }
}

/// The `v`-cycle node ids of a gadget built with [`two_cycle_gadget`].
pub fn v_nodes(gadget: &TwoCycleGadget) -> Vec<NodeId> {
    (0..2 * gadget.n as u32).map(NodeId).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gadget_shape() {
        let g = two_cycle_gadget(3);
        assert_eq!(g.graph.node_count(), 13);
        // 2·(2n) cycle edges + 1 edge to w
        assert_eq!(g.graph.edge_count(), 13);
        assert_eq!(g.graph.label(g.w), g.interner.get("a3").unwrap());
    }

    #[test]
    fn deltas_connect_the_right_nodes() {
        let g = two_cycle_gadget(2);
        // n = 2: vn = v2 = id 1, un = u2 = id 2n + 1 = 5
        assert_eq!(g.delta1.edge(), (NodeId(1), NodeId(5)));
        // u1 = id 4, v1 = id 0
        assert_eq!(g.delta2.edge(), (NodeId(4), NodeId(0)));
    }

    #[test]
    fn query_constant_matches_struct_field() {
        // The language-level check (the query accepts exactly the intended
        // words) lives in the workspace integration tests where igc-nfa is
        // available; here we pin the constant itself.
        let g = two_cycle_gadget(1);
        assert_eq!(g.query, TWO_CYCLE_QUERY);
        assert_eq!(TWO_CYCLE_QUERY, "a1.a1*.a2.a2*.a1.a3");
    }

    #[test]
    fn gadget_paths_exist_only_with_both_insertions() {
        use igc_graph::traversal::reaches_within;
        let mut gadget = two_cycle_gadget(4);
        let (vn, un) = gadget.delta1.edge();
        let (u1, v1) = gadget.delta2.edge();
        // Without insertions: no v-node reaches any u-node.
        assert!(!reaches_within(&gadget.graph, vn, un, None));
        gadget.graph.apply(&gadget.delta1);
        assert!(reaches_within(&gadget.graph, vn, un, None));
        // u1 cannot get back to v1 yet.
        assert!(!reaches_within(&gadget.graph, u1, v1, None));
        gadget.graph.apply(&gadget.delta2);
        // Now every v-node reaches w through both cycles.
        for v in v_nodes(&gadget) {
            assert!(reaches_within(&gadget.graph, v, gadget.w, None));
        }
    }
}
