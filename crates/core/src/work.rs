//! Work accounting: the empirical counterpart of the paper's cost measures.
//!
//! Boundedness (Section 3), localizability (Section 4) and relative
//! boundedness (Section 5) are all statements about *how much an algorithm
//! inspects*. Every algorithm in this workspace counts its inspections in a
//! [`WorkStats`], so those statements become testable: e.g. IncKWS's work for
//! a fixed `ΔG` must not grow when `|G|` doubles (localizability), and
//! IncRPQ's work must stay within a constant factor of `|AFF|` (relative
//! boundedness).

use std::ops::{Add, AddAssign};

/// Counters of the elementary inspections an algorithm performs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkStats {
    /// Nodes visited (dequeued/popped/expanded).
    pub nodes_visited: u64,
    /// Edges (or product-graph edges) traversed.
    pub edges_traversed: u64,
    /// Auxiliary-structure entries read or written (kdist entries, markings,
    /// num/lowlink values, rank updates).
    pub aux_touched: u64,
    /// Priority-queue or stack operations.
    pub queue_ops: u64,
}

impl WorkStats {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sum of all counters — the scalar "work" used in comparisons.
    pub fn total(&self) -> u64 {
        self.nodes_visited + self.edges_traversed + self.aux_touched + self.queue_ops
    }

    /// Reset all counters to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Componentwise difference `self - earlier`, saturating at zero — the
    /// work done between two snapshots of a monotonically accumulating
    /// counter (saturating so an interleaved `reset` cannot underflow).
    pub fn since(&self, earlier: &WorkStats) -> WorkStats {
        WorkStats {
            nodes_visited: self.nodes_visited.saturating_sub(earlier.nodes_visited),
            edges_traversed: self.edges_traversed.saturating_sub(earlier.edges_traversed),
            aux_touched: self.aux_touched.saturating_sub(earlier.aux_touched),
            queue_ops: self.queue_ops.saturating_sub(earlier.queue_ops),
        }
    }
}

impl Add for WorkStats {
    type Output = WorkStats;
    fn add(self, rhs: WorkStats) -> WorkStats {
        WorkStats {
            nodes_visited: self.nodes_visited + rhs.nodes_visited,
            edges_traversed: self.edges_traversed + rhs.edges_traversed,
            aux_touched: self.aux_touched + rhs.aux_touched,
            queue_ops: self.queue_ops + rhs.queue_ops,
        }
    }
}

impl AddAssign for WorkStats {
    fn add_assign(&mut self, rhs: WorkStats) {
        *self = *self + rhs;
    }
}

/// The paper's change quantities for one incremental step.
///
/// * `|CHANGED| = |ΔG| + |ΔO|` — the classical boundedness yardstick,
/// * `|AFF|` — the size of the change in the region inspected by the fixed
///   batch algorithm (relative boundedness, Section 5).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChangeMetrics {
    /// `|ΔG|`: number of unit updates applied.
    pub input_updates: u64,
    /// `|ΔO|`: number of unit changes to the query answer.
    pub output_changes: u64,
    /// `|AFF|`: changed auxiliary entries (markings, kdist entries,
    /// num/lowlink/rank values) — what the batch algorithm would have had to
    /// re-inspect.
    pub affected: u64,
}

impl ChangeMetrics {
    /// `|CHANGED| = |ΔG| + |ΔO|`.
    pub fn changed(&self) -> u64 {
        self.input_updates + self.output_changes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_reset() {
        let mut w = WorkStats {
            nodes_visited: 1,
            edges_traversed: 2,
            aux_touched: 3,
            queue_ops: 4,
        };
        assert_eq!(w.total(), 10);
        w.reset();
        assert_eq!(w.total(), 0);
    }

    #[test]
    fn addition_is_componentwise() {
        let a = WorkStats {
            nodes_visited: 1,
            edges_traversed: 2,
            aux_touched: 3,
            queue_ops: 4,
        };
        let b = WorkStats {
            nodes_visited: 10,
            edges_traversed: 20,
            aux_touched: 30,
            queue_ops: 40,
        };
        let c = a + b;
        assert_eq!(c.nodes_visited, 11);
        assert_eq!(c.queue_ops, 44);
        let mut d = a;
        d += b;
        assert_eq!(d, c);
    }

    #[test]
    fn since_is_saturating_componentwise_difference() {
        let early = WorkStats {
            nodes_visited: 1,
            edges_traversed: 2,
            aux_touched: 3,
            queue_ops: 4,
        };
        let late = WorkStats {
            nodes_visited: 5,
            edges_traversed: 2,
            aux_touched: 10,
            queue_ops: 4,
        };
        let d = late.since(&early);
        assert_eq!(d.nodes_visited, 4);
        assert_eq!(d.edges_traversed, 0);
        assert_eq!(d.aux_touched, 7);
        assert_eq!(d.queue_ops, 0);
        // a reset between snapshots saturates instead of underflowing
        assert_eq!(WorkStats::new().since(&late).total(), 0);
    }

    #[test]
    fn changed_is_input_plus_output() {
        let m = ChangeMetrics {
            input_updates: 5,
            output_changes: 7,
            affected: 100,
        };
        assert_eq!(m.changed(), 12);
    }
}
