//! The ε-free NFA `M_Q = (S, Σ, δ, s0, F)` used by the RPQ algorithms.

use igc_graph::{FxHashMap, Label};

/// An NFA state index. State `0` is always the initial state `s0`.
pub type StateId = u16;

/// An ε-free nondeterministic finite automaton over node labels.
///
/// Transitions are stored per state as a label-indexed map to successor
/// state lists, so the product-graph traversal of `RPQ_NFA` can enumerate
/// `δ(s, l(v'))` in O(1) lookup + output time.
#[derive(Debug, Clone)]
pub struct Nfa {
    /// `delta[s]` maps a label to the successor states `δ(s, α)`.
    delta: Vec<FxHashMap<Label, Vec<StateId>>>,
    /// `accepting[s]` is true iff `s ∈ F`.
    accepting: Vec<bool>,
}

impl Nfa {
    /// Build from raw parts. `delta.len()` and `accepting.len()` must agree;
    /// state 0 is the initial state.
    pub fn from_parts(delta: Vec<FxHashMap<Label, Vec<StateId>>>, accepting: Vec<bool>) -> Self {
        assert_eq!(delta.len(), accepting.len());
        assert!(!delta.is_empty(), "an NFA needs at least the initial state");
        assert!(delta.len() <= StateId::MAX as usize + 1);
        Nfa { delta, accepting }
    }

    /// Number of states `|S|`.
    pub fn state_count(&self) -> usize {
        self.delta.len()
    }

    /// The initial state `s0`.
    pub fn initial(&self) -> StateId {
        0
    }

    /// `δ(s, α)`.
    #[inline]
    pub fn next(&self, s: StateId, label: Label) -> &[StateId] {
        self.delta[s as usize]
            .get(&label)
            .map_or(&[], |v| v.as_slice())
    }

    /// True iff `s ∈ F`.
    #[inline]
    pub fn is_accepting(&self, s: StateId) -> bool {
        self.accepting[s as usize]
    }

    /// All accepting states.
    pub fn accepting_states(&self) -> impl Iterator<Item = StateId> + '_ {
        (0..self.delta.len() as StateId).filter(|&s| self.is_accepting(s))
    }

    /// States reached from `s0` by consuming the *first* path label — the
    /// seeding function of the RPQ product traversal: a source node `u`
    /// starts in every state of `start_states(l(u))`.
    #[inline]
    pub fn start_states(&self, label: Label) -> &[StateId] {
        self.next(0, label)
    }

    /// True iff ε is accepted (s0 ∈ F). For RPQ over node-labelled paths this
    /// never fires (every path has at least one node label), but it keeps
    /// word acceptance exact.
    pub fn accepts_empty(&self) -> bool {
        self.accepting[0]
    }

    /// Subset-simulation word acceptance — the oracle the Glushkov
    /// construction is property-tested against.
    pub fn accepts_word(&self, word: &[Label]) -> bool {
        if word.is_empty() {
            return self.accepts_empty();
        }
        let mut current: Vec<bool> = vec![false; self.state_count()];
        for &s in self.start_states(word[0]) {
            current[s as usize] = true;
        }
        for &l in &word[1..] {
            let mut next: Vec<bool> = vec![false; self.state_count()];
            for (s, &on) in current.iter().enumerate() {
                if on {
                    for &t in self.next(s as StateId, l) {
                        next[t as usize] = true;
                    }
                }
            }
            current = next;
        }
        current
            .iter()
            .enumerate()
            .any(|(s, &on)| on && self.is_accepting(s as StateId))
    }

    /// Iterate every transition `(s, α, t)` with `t ∈ δ(s, α)` — used to
    /// build inverse transition tables for backward propagation.
    pub fn all_transitions(&self) -> impl Iterator<Item = (StateId, Label, StateId)> + '_ {
        self.delta.iter().enumerate().flat_map(|(s, m)| {
            m.iter()
                .flat_map(move |(&l, ts)| ts.iter().map(move |&t| (s as StateId, l, t)))
        })
    }

    /// Every label that appears on some transition (the alphabet actually
    /// used; labels outside this set can never advance the automaton).
    pub fn used_labels(&self) -> Vec<Label> {
        let mut set: Vec<Label> = self.delta.iter().flat_map(|m| m.keys().copied()).collect();
        set.sort_unstable();
        set.dedup();
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-built NFA for `a·b*`: s0 --a--> s1(accepting) --b--> s1.
    fn ab_star() -> Nfa {
        let a = Label(0);
        let b = Label(1);
        let mut d0 = FxHashMap::default();
        d0.insert(a, vec![1]);
        let mut d1 = FxHashMap::default();
        d1.insert(b, vec![1]);
        Nfa::from_parts(vec![d0, d1], vec![false, true])
    }

    #[test]
    fn accepts_and_rejects() {
        let n = ab_star();
        let a = Label(0);
        let b = Label(1);
        assert!(n.accepts_word(&[a]));
        assert!(n.accepts_word(&[a, b, b]));
        assert!(!n.accepts_word(&[b]));
        assert!(!n.accepts_word(&[a, a]));
        assert!(!n.accepts_word(&[]));
    }

    #[test]
    fn start_states_seed_on_first_label() {
        let n = ab_star();
        assert_eq!(n.start_states(Label(0)), &[1]);
        assert!(n.start_states(Label(1)).is_empty());
    }

    #[test]
    fn used_labels_sorted_unique() {
        let n = ab_star();
        assert_eq!(n.used_labels(), vec![Label(0), Label(1)]);
    }

    #[test]
    #[should_panic(expected = "at least the initial state")]
    fn empty_nfa_rejected() {
        let _ = Nfa::from_parts(vec![], vec![]);
    }
}
