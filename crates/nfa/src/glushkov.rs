//! Glushkov position automaton: a small ε-free NFA from a regular expression.
//!
//! Each occurrence of a label in the expression is a *position*; the
//! automaton has one state per position plus the initial state, so
//! `|S| = |Q| + 1` — matching the paper's observation (Section 6, Exp-2)
//! that the NFA size depends only on the number of label occurrences, not on
//! the number of `·`, `+` or `*` operators.

use crate::nfa::{Nfa, StateId};
use crate::regex::Regex;
use igc_graph::{FxHashMap, Label};

/// Per-subexpression Glushkov sets over positions (1-based; 0 is initial).
struct Info {
    nullable: bool,
    first: Vec<StateId>,
    last: Vec<StateId>,
}

struct Builder {
    /// Label of each position; index 0 unused (initial state placeholder).
    pos_label: Vec<Label>,
    /// `follow[p]` = positions that may come immediately after `p`.
    follow: Vec<Vec<StateId>>,
}

impl Builder {
    fn walk(&mut self, r: &Regex) -> Info {
        match r {
            Regex::Epsilon => Info {
                nullable: true,
                first: vec![],
                last: vec![],
            },
            Regex::Symbol(l) => {
                let p = self.pos_label.len() as StateId;
                self.pos_label.push(*l);
                self.follow.push(Vec::new());
                Info {
                    nullable: false,
                    first: vec![p],
                    last: vec![p],
                }
            }
            Regex::Concat(a, b) => {
                let ia = self.walk(a);
                let ib = self.walk(b);
                for &p in &ia.last {
                    extend_unique(&mut self.follow[p as usize], &ib.first);
                }
                let mut first = ia.first.clone();
                if ia.nullable {
                    extend_unique(&mut first, &ib.first);
                }
                let mut last = ib.last.clone();
                if ib.nullable {
                    extend_unique(&mut last, &ia.last);
                }
                Info {
                    nullable: ia.nullable && ib.nullable,
                    first,
                    last,
                }
            }
            Regex::Alt(a, b) => {
                let ia = self.walk(a);
                let ib = self.walk(b);
                let mut first = ia.first;
                extend_unique(&mut first, &ib.first);
                let mut last = ia.last;
                extend_unique(&mut last, &ib.last);
                Info {
                    nullable: ia.nullable || ib.nullable,
                    first,
                    last,
                }
            }
            Regex::Star(a) => {
                let ia = self.walk(a);
                for &p in &ia.last {
                    let first = ia.first.clone();
                    extend_unique(&mut self.follow[p as usize], &first);
                }
                Info {
                    nullable: true,
                    first: ia.first,
                    last: ia.last,
                }
            }
        }
    }
}

fn extend_unique(dst: &mut Vec<StateId>, src: &[StateId]) {
    for &s in src {
        if !dst.contains(&s) {
            dst.push(s);
        }
    }
}

/// Build the Glushkov NFA for `regex`. States: `0` (initial) plus one per
/// label occurrence; accepting states are the `last` positions, plus the
/// initial state when the expression is nullable.
pub fn build_nfa(regex: &Regex) -> Nfa {
    let mut b = Builder {
        pos_label: vec![Label(u32::MAX)], // dummy for state 0
        follow: vec![Vec::new()],
    };
    let info = b.walk(regex);
    let n = b.pos_label.len();
    let mut delta: Vec<FxHashMap<Label, Vec<StateId>>> = vec![FxHashMap::default(); n];

    // Initial transitions: δ(s0, label(p)) ∋ p for p ∈ first.
    for &p in &info.first {
        delta[0].entry(b.pos_label[p as usize]).or_default().push(p);
    }
    // Interior transitions: δ(q, label(p)) ∋ p for p ∈ follow(q).
    #[allow(clippy::needless_range_loop)] // `follow` is taken by index to appease borrows
    for q in 1..n {
        // Move the follow list out to appease the borrow checker.
        let follows = std::mem::take(&mut b.follow[q]);
        for &p in &follows {
            delta[q].entry(b.pos_label[p as usize]).or_default().push(p);
        }
    }
    let mut accepting = vec![false; n];
    accepting[0] = info.nullable;
    for &p in &info.last {
        accepting[p as usize] = true;
    }
    Nfa::from_parts(delta, accepting)
}

#[cfg(test)]
mod tests {
    use super::*;
    use igc_graph::LabelInterner;

    fn nfa_of(expr: &str) -> (Nfa, LabelInterner) {
        let mut it = LabelInterner::new();
        let r = Regex::parse(expr, &mut it).unwrap();
        (build_nfa(&r), it)
    }

    fn word(it: &LabelInterner, s: &str) -> Vec<Label> {
        s.split_whitespace().map(|t| it.get(t).unwrap()).collect()
    }

    #[test]
    fn state_count_is_positions_plus_one() {
        let (n, _) = nfa_of("c.(b.a+c)*.c");
        assert_eq!(n.state_count(), 6);
        let (n, _) = nfa_of("a*");
        assert_eq!(n.state_count(), 2);
    }

    #[test]
    fn paper_example4_language() {
        let (n, it) = nfa_of("c.(b.a+c)*.c");
        assert!(n.accepts_word(&word(&it, "c c")));
        assert!(n.accepts_word(&word(&it, "c b a c")));
        assert!(n.accepts_word(&word(&it, "c c c b a c")));
        assert!(!n.accepts_word(&word(&it, "c b c")));
        assert!(!n.accepts_word(&word(&it, "c")));
        assert!(!n.accepts_word(&word(&it, "b a")));
    }

    #[test]
    fn nullable_expression_accepts_empty() {
        let (n, _) = nfa_of("a*");
        assert!(n.accepts_empty());
        let (n, _) = nfa_of("a");
        assert!(!n.accepts_empty());
    }

    #[test]
    fn alternation_and_star_interaction() {
        let (n, it) = nfa_of("(a+b)*.c");
        assert!(n.accepts_word(&word(&it, "c")));
        assert!(n.accepts_word(&word(&it, "a b a c")));
        assert!(!n.accepts_word(&word(&it, "a b")));
    }

    #[test]
    fn ssrp_reduction_query_shape() {
        // The Section 3 reduction uses Q2 = α1 · α2*.
        let (n, it) = nfa_of("alpha1.alpha2*");
        assert!(n.accepts_word(&word(&it, "alpha1")));
        assert!(n.accepts_word(&word(&it, "alpha1 alpha2 alpha2")));
        assert!(!n.accepts_word(&word(&it, "alpha2")));
    }

    #[test]
    fn repeated_label_positions_distinct() {
        // a.a needs two positions even though the label repeats.
        let (n, it) = nfa_of("a.a");
        assert_eq!(n.state_count(), 3);
        assert!(n.accepts_word(&word(&it, "a a")));
        assert!(!n.accepts_word(&word(&it, "a")));
        assert!(!n.accepts_word(&word(&it, "a a a")));
    }

    #[test]
    fn glushkov_agrees_with_ast_matcher_exhaustively() {
        // Enumerate all words up to length 4 over {a, b} for several
        // expressions and compare NFA acceptance with the AST oracle.
        let exprs = [
            "a",
            "a*",
            "a.b",
            "a+b",
            "(a.b)*",
            "a.(a+b)*",
            "(a+b).(a+b)",
            "a*.b*",
            "(a.b+b.a)*",
            "%+a.b",
            "a.a*+b",
        ];
        for expr in exprs {
            let mut it = LabelInterner::new();
            let a = it.intern("a");
            let b = it.intern("b");
            let r = Regex::parse(expr, &mut it).unwrap();
            let n = build_nfa(&r);
            let alphabet = [a, b];
            let mut words: Vec<Vec<Label>> = vec![vec![]];
            for _ in 0..4 {
                let mut next = Vec::new();
                for w in &words {
                    for &l in &alphabet {
                        let mut w2 = w.clone();
                        w2.push(l);
                        next.push(w2);
                    }
                }
                words.extend(next);
            }
            for w in &words {
                assert_eq!(
                    n.accepts_word(w),
                    r.matches(w),
                    "mismatch for {expr} on {w:?}"
                );
            }
        }
    }
}
