#![warn(missing_docs)]

//! Regular path query expressions and ε-free NFA construction.
//!
//! The paper's batch algorithm for RPQ (`RPQ_NFA`, Section 5.2) first
//! translates the regular expression `Q ::= ε | α | Q·Q | Q+Q | Q*` into a
//! *small ε-free NFA* following Hromkovič et al. \[29\]; the Glushkov position
//! automaton built here has the same signature (ε-free, `|Q| + 1` states,
//! where `|Q|` counts label occurrences) and is the standard realisation of
//! that construction.
//!
//! * [`Regex`] — the expression AST, with a parser for the paper's syntax
//!   (`·` or `.` concatenation, `+` union, `*` star, `()` grouping), and
//! * [`Nfa`] — the position automaton, exposing the transition function
//!   `δ(s, α)` the RPQ algorithms traverse.

pub mod glushkov;
pub mod nfa;
pub mod regex;

pub use glushkov::build_nfa;
pub use nfa::{Nfa, StateId};
pub use regex::{ParseError, Regex};
