//! The regular path expression AST and its parser.

use igc_graph::{Label, LabelInterner};
use std::fmt;

/// A regular path query `Q ::= ε | α | Q·Q | Q+Q | Q*` (paper Section 2.1).
///
/// Labels are interned [`Label`]s; the matched strings are sequences of
/// *node* labels along a path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Regex {
    /// ε — the empty string.
    Epsilon,
    /// A single label α ∈ Σ.
    Symbol(Label),
    /// Concatenation `Q1 · Q2`.
    Concat(Box<Regex>, Box<Regex>),
    /// Union `Q1 + Q2`.
    Alt(Box<Regex>, Box<Regex>),
    /// Kleene star `Q*`.
    Star(Box<Regex>),
}

impl Regex {
    /// A single-symbol expression.
    pub fn symbol(l: Label) -> Regex {
        Regex::Symbol(l)
    }

    /// `self · other`.
    pub fn then(self, other: Regex) -> Regex {
        Regex::Concat(Box::new(self), Box::new(other))
    }

    /// `self + other`.
    pub fn or(self, other: Regex) -> Regex {
        Regex::Alt(Box::new(self), Box::new(other))
    }

    /// `self*`.
    pub fn star(self) -> Regex {
        Regex::Star(Box::new(self))
    }

    /// The paper's query size `|Q|`: the number of label occurrences.
    pub fn size(&self) -> usize {
        match self {
            Regex::Epsilon => 0,
            Regex::Symbol(_) => 1,
            Regex::Concat(a, b) | Regex::Alt(a, b) => a.size() + b.size(),
            Regex::Star(a) => a.size(),
        }
    }

    /// True when ε ∈ L(Q).
    pub fn nullable(&self) -> bool {
        match self {
            Regex::Epsilon => true,
            Regex::Symbol(_) => false,
            Regex::Concat(a, b) => a.nullable() && b.nullable(),
            Regex::Alt(a, b) => a.nullable() || b.nullable(),
            Regex::Star(_) => true,
        }
    }

    /// Naive membership test `w ∈ L(Q)` — the test oracle for the NFA
    /// construction. Dynamic programming over sub-spans; fine for the short
    /// words used in tests, not meant for production matching.
    pub fn matches(&self, word: &[Label]) -> bool {
        self.ends_from(word, 0).contains(&word.len())
    }

    /// All `j` such that this expression matches `word[i..j]`.
    fn ends_from(&self, word: &[Label], i: usize) -> Vec<usize> {
        match self {
            Regex::Epsilon => vec![i],
            Regex::Symbol(l) => {
                if i < word.len() && word[i] == *l {
                    vec![i + 1]
                } else {
                    vec![]
                }
            }
            Regex::Concat(a, b) => {
                let mut out = Vec::new();
                for m in a.ends_from(word, i) {
                    for j in b.ends_from(word, m) {
                        if !out.contains(&j) {
                            out.push(j);
                        }
                    }
                }
                out
            }
            Regex::Alt(a, b) => {
                let mut out = a.ends_from(word, i);
                for j in b.ends_from(word, i) {
                    if !out.contains(&j) {
                        out.push(j);
                    }
                }
                out
            }
            Regex::Star(a) => {
                // Fixed point of reachable end positions.
                let mut out = vec![i];
                let mut frontier = vec![i];
                while let Some(m) = frontier.pop() {
                    for j in a.ends_from(word, m) {
                        if j > m && !out.contains(&j) {
                            out.push(j);
                            frontier.push(j);
                        }
                    }
                }
                out
            }
        }
    }

    /// Parse the paper's syntax. Labels are identifiers (`[A-Za-z0-9_]+`),
    /// `.` (or `·`) concatenates, `+` unions, `*` stars, `()` groups, and
    /// `%` denotes ε. New label names are interned into `interner`.
    ///
    /// Example: `"c.(b.a+c)*.c"` is the query of the paper's Example 4.
    pub fn parse(input: &str, interner: &mut LabelInterner) -> Result<Regex, ParseError> {
        let mut p = Parser {
            tokens: tokenize(input)?,
            pos: 0,
            interner,
        };
        let r = p.alt()?;
        if p.pos != p.tokens.len() {
            return Err(ParseError::Trailing(p.pos));
        }
        Ok(r)
    }
}

/// Parse failure for [`Regex::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// An unexpected character at this byte offset.
    UnexpectedChar(char),
    /// Expression ended prematurely.
    UnexpectedEnd,
    /// A closing parenthesis without an opener, or similar token misuse.
    UnexpectedToken(usize),
    /// Input remained after a complete expression (token index).
    Trailing(usize),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::UnexpectedChar(c) => write!(f, "unexpected character {c:?}"),
            ParseError::UnexpectedEnd => write!(f, "unexpected end of expression"),
            ParseError::UnexpectedToken(i) => write!(f, "unexpected token at position {i}"),
            ParseError::Trailing(i) => write!(f, "trailing input from token {i}"),
        }
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Ident(String),
    Dot,
    Plus,
    Star,
    LParen,
    RParen,
    Epsilon,
}

fn tokenize(input: &str) -> Result<Vec<Token>, ParseError> {
    let mut out = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            ' ' | '\t' | '\n' => {
                chars.next();
            }
            '.' | '·' => {
                chars.next();
                out.push(Token::Dot);
            }
            '+' => {
                chars.next();
                out.push(Token::Plus);
            }
            '*' => {
                chars.next();
                out.push(Token::Star);
            }
            '(' => {
                chars.next();
                out.push(Token::LParen);
            }
            ')' => {
                chars.next();
                out.push(Token::RParen);
            }
            '%' => {
                chars.next();
                out.push(Token::Epsilon);
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Token::Ident(s));
            }
            other => return Err(ParseError::UnexpectedChar(other)),
        }
    }
    Ok(out)
}

struct Parser<'a> {
    tokens: Vec<Token>,
    pos: usize,
    interner: &'a mut LabelInterner,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    /// alt := concat ('+' concat)*
    fn alt(&mut self) -> Result<Regex, ParseError> {
        let mut left = self.concat()?;
        while self.peek() == Some(&Token::Plus) {
            self.pos += 1;
            let right = self.concat()?;
            left = left.or(right);
        }
        Ok(left)
    }

    /// concat := postfix ('.' postfix)*   (explicit dots, per the paper)
    fn concat(&mut self) -> Result<Regex, ParseError> {
        let mut left = self.postfix()?;
        while self.peek() == Some(&Token::Dot) {
            self.pos += 1;
            let right = self.postfix()?;
            left = left.then(right);
        }
        Ok(left)
    }

    /// postfix := atom '*'*
    fn postfix(&mut self) -> Result<Regex, ParseError> {
        let mut r = self.atom()?;
        while self.peek() == Some(&Token::Star) {
            self.pos += 1;
            r = r.star();
        }
        Ok(r)
    }

    fn atom(&mut self) -> Result<Regex, ParseError> {
        match self.tokens.get(self.pos).cloned() {
            Some(Token::Ident(name)) => {
                self.pos += 1;
                Ok(Regex::Symbol(self.interner.intern(&name)))
            }
            Some(Token::Epsilon) => {
                self.pos += 1;
                Ok(Regex::Epsilon)
            }
            Some(Token::LParen) => {
                self.pos += 1;
                let inner = self.alt()?;
                if self.tokens.get(self.pos) != Some(&Token::RParen) {
                    return Err(ParseError::UnexpectedEnd);
                }
                self.pos += 1;
                Ok(inner)
            }
            Some(_) => Err(ParseError::UnexpectedToken(self.pos)),
            None => Err(ParseError::UnexpectedEnd),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (LabelInterner, Label, Label, Label) {
        let mut it = LabelInterner::new();
        let a = it.intern("a");
        let b = it.intern("b");
        let c = it.intern("c");
        (it, a, b, c)
    }

    #[test]
    fn parse_paper_example4() {
        let (mut it, a, b, c) = setup();
        let q = Regex::parse("c.(b.a+c)*.c", &mut it).unwrap();
        assert_eq!(q.size(), 5);
        assert!(q.matches(&[c, c]));
        assert!(q.matches(&[c, b, a, c]));
        assert!(q.matches(&[c, c, b, a, c]));
        assert!(!q.matches(&[c, b, c]));
        assert!(!q.matches(&[c]));
    }

    #[test]
    fn parse_precedence_star_binds_tightest() {
        let (mut it, a, b, _) = setup();
        // a + b* == a + (b*)
        let q = Regex::parse("a+b*", &mut it).unwrap();
        assert!(q.matches(&[a]));
        assert!(q.matches(&[]));
        assert!(q.matches(&[b, b, b]));
        assert!(!q.matches(&[a, a]));
    }

    #[test]
    fn parse_dot_binds_tighter_than_plus() {
        let (mut it, a, b, c) = setup();
        // a.b + c == (a.b) + c
        let q = Regex::parse("a.b+c", &mut it).unwrap();
        assert!(q.matches(&[a, b]));
        assert!(q.matches(&[c]));
        assert!(!q.matches(&[a, c]));
    }

    #[test]
    fn parse_epsilon() {
        let (mut it, a, _, _) = setup();
        let q = Regex::parse("%+a", &mut it).unwrap();
        assert!(q.nullable());
        assert!(q.matches(&[]));
        assert!(q.matches(&[a]));
    }

    #[test]
    fn parse_errors() {
        let mut it = LabelInterner::new();
        assert!(Regex::parse("(a", &mut it).is_err());
        assert!(Regex::parse("a)", &mut it).is_err());
        assert!(Regex::parse("a +", &mut it).is_err());
        assert!(Regex::parse("&", &mut it).is_err());
        assert!(Regex::parse("", &mut it).is_err());
    }

    #[test]
    fn parse_multichar_and_unicode_dot() {
        let mut it = LabelInterner::new();
        let q = Regex::parse("person · knows", &mut it).unwrap();
        assert_eq!(q.size(), 2);
        let p = it.get("person").unwrap();
        let k = it.get("knows").unwrap();
        assert!(q.matches(&[p, k]));
    }

    #[test]
    fn size_ignores_structure() {
        let (mut it, ..) = setup();
        let q = Regex::parse("(a+b)*.(a.a)", &mut it).unwrap();
        assert_eq!(q.size(), 4);
    }

    #[test]
    fn nullable_rules() {
        let (mut it, ..) = setup();
        assert!(Regex::parse("a*", &mut it).unwrap().nullable());
        assert!(!Regex::parse("a.b*", &mut it).unwrap().nullable());
        assert!(Regex::parse("a*.b*", &mut it).unwrap().nullable());
        assert!(!Regex::parse("a", &mut it).unwrap().nullable());
    }

    #[test]
    fn matcher_star_of_nullable_terminates() {
        let (mut it, a, _, _) = setup();
        let q = Regex::parse("(%+a)*", &mut it).unwrap();
        assert!(q.matches(&[]));
        assert!(q.matches(&[a, a, a]));
    }

    #[test]
    fn builder_api_equivalent_to_parser() {
        let (mut it, a, b, _) = setup();
        let built = Regex::symbol(a).then(Regex::symbol(b).star());
        let parsed = Regex::parse("a.b*", &mut it).unwrap();
        assert_eq!(built, parsed);
    }
}
