//! The paper's running examples, end to end through the facade API.
//!
//! Figure 2's exact edge set is not published machine-readably, so each
//! test reconstructs the *behaviour* the example describes (the full-text
//! walkthroughs fix distances, affected sets and outputs) on a graph with
//! the same structure around the relevant nodes.

use incgraph::prelude::*;
use incgraph::scc::tarjan;

/// Example 1: inserting e1 shortens b2's distance to a d-node from 2 to 1,
/// the change propagates to c2 where it stops at the bound, and a new match
/// rooted at c2 appears.
#[test]
fn example1_insertion_shortens_and_creates_match() {
    // labels: a=0, b=1, c=2, d=3
    // c2(0,c) → b2(1,b) → b4(2,b) → d1(3,d); b2 → a1(4,a); c2 → b3(5,b) → a2(6,a)
    let mut g = DynamicGraph::new();
    let c2 = g.add_node(Label(2));
    let b2 = g.add_node(Label(1));
    let b4 = g.add_node(Label(1));
    let d1 = g.add_node(Label(3));
    let a1 = g.add_node(Label(0));
    let b3 = g.add_node(Label(1));
    let a2 = g.add_node(Label(0));
    for (x, y) in [(c2, b2), (b2, b4), (b4, d1), (b2, a1), (c2, b3), (b3, a2)] {
        g.insert_edge(x, y);
    }
    // Q = (a, d), b = 2.
    let q = KwsQuery::new(vec![Label(0), Label(3)], 2);
    let mut kws = IncKws::new(&g, q);
    // Before: b2 matches (a at 1, d at 2); c2 does not (d at 3 > b ⇒ ⊥).
    assert!(kws.is_match_root(b2));
    assert_eq!(kws.kdist().get(b2, 1).dist, 2);
    assert!(!kws.is_match_root(c2));

    // e1 = (b2, d1): b2's d-distance drops 2 → 1 and c2 becomes a root at 2.
    g.insert_edge(b2, d1);
    kws.insert_edge(&g, b2, d1);
    assert_eq!(kws.kdist().get(b2, 1).dist, 1);
    assert_eq!(kws.kdist().get(b2, 1).next, Some(d1));
    assert_eq!(kws.kdist().get(c2, 1).dist, 2);
    assert!(kws.is_match_root(c2), "the paper's new match T_c2");

    // And the propagation stopped at the bound: the tree at c2 is valid.
    let t = kws.match_tree(c2);
    assert_eq!(t.paths[1], vec![c2, b2, d1]);
}

/// Example 2: deleting the only within-bound route to keyword `a` from c2
/// destroys the match rooted at c2 — the alternative route's distance
/// equals the bound at the successor, so c2 would land beyond it.
#[test]
fn example2_deletion_removes_match() {
    // c2 → b3 → a2 (dist 2 to a); alternative via b2 has dist(b2→a) = 2
    // (b2 → b1 → a1), so c2 via b2 would be 3 > b.
    let mut g = DynamicGraph::new();
    let c2 = g.add_node(Label(2));
    let b3 = g.add_node(Label(1));
    let a2 = g.add_node(Label(0));
    let b2 = g.add_node(Label(1));
    let b1 = g.add_node(Label(1));
    let a1 = g.add_node(Label(0));
    for (x, y) in [(c2, b3), (b3, a2), (c2, b2), (b2, b1), (b1, a1)] {
        g.insert_edge(x, y);
    }
    let q = KwsQuery::new(vec![Label(0)], 2);
    let mut kws = IncKws::new(&g, q);
    assert!(kws.is_match_root(c2));
    g.delete_edge(c2, b3);
    kws.delete_edge(&g, c2, b3);
    assert!(
        !kws.is_match_root(c2),
        "c2 cannot be a root: the surviving successor's distance equals b"
    );
}

/// Example 3 (batch interleaving): a deletion invalidating one route and
/// insertions creating another are decided together — each affected entry's
/// exact distance is fixed once.
#[test]
fn example3_batch_interleaves_deletions_and_insertions() {
    let mut g = DynamicGraph::new();
    let c2 = g.add_node(Label(2));
    let b3 = g.add_node(Label(1));
    let a2 = g.add_node(Label(0));
    let b2 = g.add_node(Label(1));
    let a1 = g.add_node(Label(0));
    for (x, y) in [(c2, b3), (b3, a2), (c2, b2)] {
        g.insert_edge(x, y);
    }
    let q = KwsQuery::new(vec![Label(0)], 2);
    let mut kws = IncKws::new(&g, q);
    assert_eq!(kws.kdist().get(c2, 0).dist, 2); // via b3, a2

    // Delete (c2,b3) and insert (b2,a1) in one batch: the a-distance of c2
    // is decided once, staying 2 through the new route c2→b2→a1.
    let delta = UpdateBatch::from_updates(vec![Update::delete(c2, b3), Update::insert(b2, a1)]);
    g.apply_batch(&delta);
    kws.apply(&g, &delta);
    assert_eq!(kws.kdist().get(c2, 0).dist, 2);
    assert_eq!(kws.kdist().get(c2, 0).next, Some(b2));
    assert!(kws.is_match_root(c2));
}

/// Examples 4 & 5: Q = c·(b·a+c)*·c — batch matches, then a batch update
/// that splits one accepting path while insertions build another; the
/// match survives through the rerouted markings.
#[test]
fn examples4_and_5_rpq_reroute() {
    let mut labels = LabelInterner::new();
    let (a, b, c) = (labels.intern("a"), labels.intern("b"), labels.intern("c"));
    let mut g = DynamicGraph::new();
    let c1 = g.add_node(c);
    let b1 = g.add_node(b);
    let a1 = g.add_node(a);
    let c2 = g.add_node(c);
    let b3 = g.add_node(b);
    let a2 = g.add_node(a);
    for (x, y) in [(c1, b1), (b1, a1), (a1, c2), (c2, b3), (b3, a2), (a2, c2)] {
        g.insert_edge(x, y);
    }
    let q = Regex::parse("c.(b.a+c)*.c", &mut labels).unwrap();
    let mut rpq = IncRpq::new(&g, &q);
    // Example 4: (c1, c2) and (c2, c2) are the matches.
    assert_eq!(rpq.sorted_answer(), vec![(c1, c2), (c2, c2)]);

    // Example 5's shape: cut the b3 route, splice in a fresh b·a detour.
    let b2 = NodeId(g.node_count() as u32);
    let a3 = NodeId(g.node_count() as u32 + 1);
    let delta = UpdateBatch::from_updates(vec![
        Update::delete(c2, b3),
        Update::insert_labeled(c2, b2, None, Some(b)),
        Update::insert_labeled(b2, a3, None, Some(a)),
        Update::insert(a3, c2),
    ]);
    g.apply_batch(&delta);
    rpq.apply(&g, &delta);
    assert!(
        rpq.contains_pair(c2, c2),
        "the accepting state persists through the rerouted path"
    );
    assert!(rpq.contains_pair(c1, c2));
}

/// Example 7: an insertion whose endpoints' topological ranks are out of
/// order identifies the affected area and merges the components on the
/// produced cycle.
#[test]
fn example7_rank_violation_merges_components() {
    let mut g = DynamicGraph::new();
    for _ in 0..4 {
        g.add_node(Label(0));
    }
    let (n0, n1, n2, n3) = (NodeId(0), NodeId(1), NodeId(2), NodeId(3));
    // scc1 = {0,1}, scc2 = {2,3}, scc1 → scc2.
    for (x, y) in [(n0, n1), (n1, n0), (n2, n3), (n3, n2), (n1, n2)] {
        g.insert_edge(x, y);
    }
    let mut scc = IncScc::new(&g);
    assert_eq!(scc.scc_count(), 2);
    let r_up = scc.rank(scc.scc_of(n0));
    let r_down = scc.rank(scc.scc_of(n2));
    assert!(r_up > r_down, "ranks decrease along condensation edges");

    // Insert (b4, b3)-style back edge: ranks out of order ⇒ cycle ⇒ merge.
    g.insert_edge(n3, n0);
    scc.insert_edge(&g, n3, n0);
    assert_eq!(scc.scc_count(), 1);
    assert_eq!(scc.components(), tarjan(&g).canonical());
}

/// Example 9: deleting a load-bearing edge splits one scc into three.
#[test]
fn example9_deletion_splits_into_three() {
    let mut g = DynamicGraph::new();
    for _ in 0..4 {
        g.add_node(Label(0));
    }
    let (c1, a1, b1, x) = (NodeId(0), NodeId(1), NodeId(2), NodeId(3));
    // One scc: c1→a1→b1→c1 plus a1→x→a1.
    for (s, t) in [(c1, a1), (a1, b1), (b1, c1), (a1, x), (x, a1)] {
        g.insert_edge(s, t);
    }
    let mut scc = IncScc::new(&g);
    assert_eq!(scc.scc_count(), 1);
    g.delete_edge(b1, c1);
    scc.delete_edge(&g, b1, c1);
    assert_eq!(scc.scc_count(), 3, "split into {{c1}}, {{b1}}, {{a1, x}}");
    assert!(scc.same_scc(a1, x));
    assert_eq!(scc.components(), tarjan(&g).canonical());
}
