//! Edge cases and failure-injection tests across the public API: empty
//! structures, degenerate queries, repeated churn on the same edge,
//! self-loops, disconnected graphs, and the bound-raising extension under
//! subsequent updates.

use incgraph::prelude::*;
use incgraph::scc::tarjan;

fn two_label_graph() -> (DynamicGraph, NodeId, NodeId, NodeId) {
    let mut g = DynamicGraph::new();
    let a = g.add_node(Label(0));
    let b = g.add_node(Label(1));
    let c = g.add_node(Label(0));
    g.insert_edge(a, b);
    g.insert_edge(b, c);
    (g, a, b, c)
}

#[test]
fn empty_batch_is_a_noop_everywhere() {
    let (mut g, ..) = two_label_graph();
    let mut labels = LabelInterner::new();
    labels.intern("l0");
    labels.intern("l1");
    let q = Regex::parse("l0.l1", &mut labels).unwrap();
    let mut rpq = IncRpq::new(&g, &q);
    let mut kws = IncKws::new(&g, KwsQuery::new(vec![Label(1)], 1));
    let mut scc = IncScc::new(&g);
    let mut iso = IncIso::new(&g, Pattern::from_parts(&[0, 1], &[(0, 1)]));

    let before = (
        rpq.sorted_answer(),
        kws.answer_signature(),
        scc.components(),
        iso.sorted_matches(),
    );
    let empty = UpdateBatch::new();
    g.apply_batch(&empty);
    rpq.apply(&g, &empty);
    kws.apply(&g, &empty);
    scc.apply(&g, &empty);
    iso.apply(&g, &empty);
    assert_eq!(before.0, rpq.sorted_answer());
    assert_eq!(before.1, kws.answer_signature());
    assert_eq!(before.2, scc.components());
    assert_eq!(before.3, iso.sorted_matches());
}

#[test]
fn delete_then_reinsert_same_edge_round_trips() {
    // Churn the same edge repeatedly; every algorithm must return to its
    // original answer each time the edge returns.
    let (mut g, a, b, _) = two_label_graph();
    let mut labels = LabelInterner::new();
    labels.intern("l0");
    labels.intern("l1");
    let q = Regex::parse("l0.l1.l0", &mut labels).unwrap();
    let mut rpq = IncRpq::new(&g, &q);
    let mut kws = IncKws::new(&g, KwsQuery::new(vec![Label(1)], 2));
    let mut scc = IncScc::new(&g);
    let original = (
        rpq.sorted_answer(),
        kws.answer_signature(),
        scc.components(),
    );

    for _ in 0..3 {
        let del = UpdateBatch::from_updates(vec![Update::delete(a, b)]);
        g.apply_batch(&del);
        rpq.apply(&g, &del);
        kws.apply(&g, &del);
        scc.apply(&g, &del);

        let ins = UpdateBatch::from_updates(vec![Update::insert(a, b)]);
        g.apply_batch(&ins);
        rpq.apply(&g, &ins);
        kws.apply(&g, &ins);
        scc.apply(&g, &ins);

        assert_eq!(rpq.sorted_answer(), original.0);
        assert_eq!(kws.answer_signature(), original.1);
        assert_eq!(scc.components(), original.2);
    }
}

#[test]
fn self_loop_churn_is_consistent() {
    let mut g = DynamicGraph::new();
    let v = g.add_node(Label(0));
    let w = g.add_node(Label(0));
    g.insert_edge(v, w);
    let mut scc = IncScc::new(&g);
    let mut labels = LabelInterner::new();
    labels.intern("l0");
    let q = Regex::parse("l0.l0*", &mut labels).unwrap();
    let mut rpq = IncRpq::new(&g, &q);

    let loop_ins = UpdateBatch::from_updates(vec![Update::insert(v, v)]);
    g.apply_batch(&loop_ins);
    scc.apply(&g, &loop_ins);
    rpq.apply(&g, &loop_ins);
    assert_eq!(scc.components(), tarjan(&g).canonical());
    // l0·l0* over a self-loop: (v, v) through the loop and (v, w).
    assert!(rpq.contains_pair(v, v));
    assert!(rpq.contains_pair(v, w));

    let loop_del = UpdateBatch::from_updates(vec![Update::delete(v, v)]);
    g.apply_batch(&loop_del);
    scc.apply(&g, &loop_del);
    rpq.apply(&g, &loop_del);
    assert_eq!(scc.components(), tarjan(&g).canonical());
    assert!(rpq.contains_pair(v, v), "single-symbol match survives");
}

#[test]
fn disconnected_components_do_not_interfere() {
    // Two islands; updates in one island leave the other's answers intact.
    let mut g = DynamicGraph::new();
    let a1 = g.add_node(Label(0));
    let a2 = g.add_node(Label(1));
    let b1 = g.add_node(Label(0));
    let b2 = g.add_node(Label(1));
    g.insert_edge(a1, a2);
    g.insert_edge(b1, b2);
    let mut kws = IncKws::new(&g, KwsQuery::new(vec![Label(1)], 1));
    assert!(kws.is_match_root(a1) && kws.is_match_root(b1));

    let del = UpdateBatch::from_updates(vec![Update::delete(a1, a2)]);
    g.apply_batch(&del);
    kws.apply(&g, &del);
    assert!(!kws.is_match_root(a1));
    assert!(kws.is_match_root(b1), "the other island is untouched");
}

#[test]
fn raise_bound_then_churn_then_verify() {
    // The Remark extension composes with later updates: raise b, mutate,
    // and the final state equals a fresh computation at the new bound.
    let mut g = DynamicGraph::new();
    let nodes: Vec<NodeId> = (0..6)
        .map(|i| g.add_node(Label(if i == 5 { 9 } else { 0 })))
        .collect();
    for w in nodes.windows(2) {
        g.insert_edge(w[0], w[1]);
    }
    let mut kws = IncKws::new(&g, KwsQuery::new(vec![Label(9)], 1));
    assert_eq!(kws.match_count(), 2); // nodes 4 (dist 1) and 5 (dist 0)

    kws.raise_bound(&g, 4);
    assert_eq!(kws.match_count(), 5);

    let delta = UpdateBatch::from_updates(vec![
        Update::delete(nodes[2], nodes[3]),
        Update::insert(nodes[0], nodes[3]),
    ]);
    g.apply_batch(&delta);
    kws.apply(&g, &delta);
    let fresh = IncKws::new(&g, KwsQuery::new(vec![Label(9)], 4));
    assert_eq!(kws.answer_signature(), fresh.answer_signature());
}

#[test]
fn iso_single_node_pattern_tracks_new_nodes() {
    let mut g = DynamicGraph::new();
    g.add_node(Label(7));
    let p = Pattern::from_parts(&[7], &[]);
    let mut iso = IncIso::new(&g, p);
    assert_eq!(iso.match_count(), 1);
    // An insertion that creates a labelled fresh node adds a match.
    let delta = UpdateBatch::from_updates(vec![Update::insert_labeled(
        NodeId(0),
        NodeId(1),
        None,
        Some(Label(7)),
    )]);
    g.apply_batch(&delta);
    iso.apply(&g, &delta);
    assert_eq!(iso.match_count(), 2);
}

#[test]
fn rpq_star_only_query_matches_every_labelled_node() {
    // Q = l0* accepts ε plus any l0-word; as a path query, every l0 node
    // matches itself and l0-chains match pairwise.
    let mut labels = LabelInterner::new();
    labels.intern("l0");
    let q = Regex::parse("l0*", &mut labels).unwrap();
    let mut g = DynamicGraph::new();
    let x = g.add_node(Label(0));
    let y = g.add_node(Label(0));
    let z = g.add_node(Label(1));
    g.insert_edge(x, y);
    g.insert_edge(y, z);
    let rpq = IncRpq::new(&g, &q);
    assert!(rpq.contains_pair(x, x));
    assert!(rpq.contains_pair(x, y));
    assert!(!rpq.contains_pair(y, z), "z's label breaks the word");
    assert!(
        !rpq.contains_pair(z, z),
        "ε-acceptance needs a 1-symbol word"
    );
}

#[test]
fn scc_total_collapse_and_rebuild() {
    // Insert edges until the whole graph is one scc, then delete until it
    // fully shatters — exercising repeated merges then repeated splits.
    let n = 20u32;
    let mut g = DynamicGraph::new();
    for _ in 0..n {
        g.add_node(Label(0));
    }
    for i in 0..n - 1 {
        g.insert_edge(NodeId(i), NodeId(i + 1));
    }
    let mut scc = IncScc::new(&g);
    assert_eq!(scc.scc_count(), n as usize);

    g.insert_edge(NodeId(n - 1), NodeId(0));
    scc.insert_edge(&g, NodeId(n - 1), NodeId(0));
    assert_eq!(scc.scc_count(), 1);
    assert_eq!(scc.components(), tarjan(&g).canonical());

    // Now delete the chain edges one by one; each deletion splits off more.
    for i in 0..n - 1 {
        g.delete_edge(NodeId(i), NodeId(i + 1));
        scc.delete_edge(&g, NodeId(i), NodeId(i + 1));
        assert_eq!(scc.components(), tarjan(&g).canonical(), "after cut {i}");
    }
    assert_eq!(scc.scc_count(), n as usize);
}

#[test]
fn work_counters_monotone_and_resettable() {
    let (mut g, a, b, _) = two_label_graph();
    let mut kws = IncKws::new(&g, KwsQuery::new(vec![Label(1)], 2));
    let w0 = kws.work().total();
    let del = UpdateBatch::from_updates(vec![Update::delete(a, b)]);
    g.apply_batch(&del);
    kws.apply(&g, &del);
    assert!(kws.work().total() >= w0, "counters never decrease");
    kws.reset_work();
    assert_eq!(kws.work().total(), 0);
}
