//! Theorem 3, measured: the work of the localizable algorithms (IncKWS,
//! IncISO) for a fixed `ΔG` must not depend on `|G|` — only on the
//! `d_Q`-neighbourhood content of the updated edges.
//!
//! The construction plants an identical "update zone" inside host graphs of
//! very different sizes: the far-away part is connected but beyond the
//! locality radius of the zone, so the counters must match exactly.

use incgraph::prelude::*;

/// Host graph: an update zone (a small fixed gadget around nodes 0..Z) and
/// a long tail of `tail` extra nodes chained far away, attached at distance
/// > 2b from the zone.
fn host(tail: usize) -> (DynamicGraph, UpdateBatch) {
    let mut g = DynamicGraph::new();
    // Zone: 8 nodes, labels 0/1 used by queries.
    let zone: Vec<NodeId> = (0..8).map(|i| g.add_node(Label(i % 2))).collect();
    for i in 0..7 {
        g.insert_edge(zone[i], zone[i + 1]);
    }
    // Buffer path of label-9 nodes (distance spacer, length 6 > 2b),
    // oriented *toward* the zone so the whole tail can reach the keywords
    // — a batch engine must scan it, a localizable algorithm must not.
    let mut prev = zone[7];
    for _ in 0..6 {
        let v = g.add_node(Label(9));
        g.insert_edge(v, prev);
        prev = v;
    }
    // Far tail: a chain of label-9 nodes feeding into the buffer.
    for _ in 0..tail {
        let v = g.add_node(Label(9));
        g.insert_edge(v, prev);
        prev = v;
    }
    // The batch updates edges strictly inside the zone.
    let delta = UpdateBatch::from_updates(vec![
        Update::delete(zone[2], zone[3]),
        Update::insert(zone[0], zone[3]),
        Update::insert(zone[4], zone[6]),
    ]);
    (g, delta)
}

#[test]
fn inckws_work_is_independent_of_graph_size() {
    let q = KwsQuery::new(vec![Label(0), Label(1)], 2);
    let run = |tail: usize| -> u64 {
        let (mut g, delta) = host(tail);
        let mut kws = IncKws::new(&g, q.clone());
        kws.reset_work();
        g.apply_batch(&delta);
        kws.apply(&g, &delta);
        kws.work().total()
    };
    let small = run(10);
    let large = run(10_000);
    assert_eq!(
        small, large,
        "localizable: IncKWS work must not grow with |G| ({small} vs {large})"
    );
    assert!(small > 0, "the update zone must actually cause work");
}

#[test]
fn inciso_work_is_independent_of_graph_size() {
    let p = Pattern::from_parts(&[0, 1, 0], &[(0, 1), (1, 2)]);
    let run = |tail: usize| -> u64 {
        let (mut g, delta) = host(tail);
        let mut iso = IncIso::new(&g, p.clone());
        iso.reset_work();
        g.apply_batch(&delta);
        iso.apply(&g, &delta);
        iso.work().total()
    };
    let small = run(10);
    let large = run(10_000);
    assert_eq!(
        small, large,
        "localizable: IncISO work must not grow with |G| ({small} vs {large})"
    );
}

#[test]
fn batch_work_grows_with_graph_size_for_contrast() {
    // Sanity for the experiment design: the *batch* cost is what scales
    // with |G| — otherwise the comparison above would be vacuous.
    let q = KwsQuery::new(vec![Label(0), Label(1)], 2);
    let work_of = |tail: usize| -> u64 {
        let (g, _) = host(tail);
        let mut w = WorkStats::new();
        incgraph::kws::batch::compute_kdist_baseline(&g, &q, &mut w);
        w.total()
    };
    let small = work_of(10);
    let large = work_of(10_000);
    assert!(
        large > small * 10,
        "baseline should scan the whole graph ({small} vs {large})"
    );
}

#[test]
fn relative_boundedness_work_tracks_aff_not_graph() {
    // IncRPQ: same zone updates, growing tails — work must stay flat when
    // the affected markings stay identical. The tail carries labels the
    // query never touches, so no markings live there.
    let mut labels = LabelInterner::new();
    for i in 0..10 {
        labels.intern(&format!("l{i}"));
    }
    let q = Regex::parse("l0.(l1+l0)*", &mut labels).unwrap();
    let run = |tail: usize| -> (u64, u64) {
        let (mut g, delta) = host(tail);
        let mut rpq = IncRpq::new(&g, &q);
        rpq.reset_work();
        g.apply_batch(&delta);
        rpq.apply(&g, &delta);
        (rpq.work().total(), rpq.last_metrics().affected)
    };
    let (w_small, aff_small) = run(10);
    let (w_large, aff_large) = run(10_000);
    assert_eq!(aff_small, aff_large, "identical zones ⇒ identical AFF");
    assert_eq!(
        w_small, w_large,
        "relatively bounded: work tracks AFF, not |G|"
    );
}
