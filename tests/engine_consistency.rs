//! Cross-view consistency property: all four query classes registered on
//! one engine, driven by *arbitrary* (denormalized) commits — duplicates,
//! insert/delete pairs, no-op updates, self-loops, fresh nodes — must agree
//! with from-scratch batch recomputation after every commit.

use incgraph::graph::graph::graph_from;
use incgraph::prelude::*;
use proptest::prelude::*;

/// Build an engine over the given graph with all four classes registered.
fn engine_with_views(g: DynamicGraph) -> Engine {
    let mut engine = Engine::new(g);
    let mut it = LabelInterner::new();
    // Interner ids follow first-use order: l0→0, l1→1, l2→2, matching the
    // `i % 3` node labels below.
    let q = Regex::parse("l0.(l1+l2)*.l2", &mut it).unwrap();
    engine.register(IncRpq::new(engine.graph(), &q));
    engine.register(IncScc::new(engine.graph()));
    engine.register(IncKws::new(
        engine.graph(),
        KwsQuery::new(vec![Label(1), Label(2)], 2),
    ));
    engine.register(IncIso::new(
        engine.graph(),
        Pattern::from_parts(&[0, 1, 2], &[(0, 1), (1, 2)]),
    ));
    engine
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn all_views_agree_with_batch_recomputation_after_every_commit(
        (n, edges, commits) in (8u32..18).prop_flat_map(|n| (
            Just(n),
            // Initial edges: arbitrary ordered pairs, duplicates allowed
            // (the graph's edge set dedupes).
            proptest::collection::vec(
                (0..n, 0..n).prop_filter("no initial self-loops", |(a, b)| a != b),
                10..40,
            ),
            // 1–4 commits of raw unit updates. Ids range past n so
            // insertions create fresh (default-labelled) nodes; nothing
            // forbids duplicates, insert/delete pairs, no-ops or
            // self-loops — that is the point.
            proptest::collection::vec(
                proptest::collection::vec(
                    (any::<bool>(), 0..n + 3, 0..n + 3),
                    1..14,
                ),
                1..5,
            ),
        ))
    ) {
        let labels: Vec<u32> = (0..n).map(|i| i % 3).collect();
        let g = graph_from(&labels, &edges);
        let mut engine = engine_with_views(g);

        let mut last_epoch = engine.epoch();
        for (round, raw) in commits.iter().enumerate() {
            let batch: UpdateBatch = raw
                .iter()
                .map(|&(ins, a, b)| {
                    if ins {
                        Update::insert(NodeId(a), NodeId(b))
                    } else {
                        Update::delete(NodeId(a), NodeId(b))
                    }
                })
                .collect();
            let receipt = engine.commit(&batch);

            // Receipt arithmetic is conserved; the epoch advances exactly
            // when something was applied.
            prop_assert_eq!(receipt.submitted, raw.len());
            prop_assert_eq!(receipt.applied + receipt.dropped, receipt.submitted);
            if receipt.is_noop() {
                prop_assert_eq!(receipt.epoch, last_epoch);
            } else {
                prop_assert_eq!(receipt.epoch, last_epoch + 1);
                prop_assert_eq!(receipt.per_view.len(), 4);
            }
            last_epoch = receipt.epoch;

            // The heart of the property: every registered view equals its
            // from-scratch batch recomputation on the current graph.
            if let Err(failures) = engine.verify_all() {
                panic!("commit {round}: views diverged from batch recomputation: {failures:?}");
            }
        }
    }
}
