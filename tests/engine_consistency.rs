//! Cross-view consistency properties for the engine.
//!
//! Three properties live here:
//!
//! 1. all five query classes (rpq, scc, kws, iso, and the delta-rule
//!    views of `igc_rules`) registered on one engine, driven by
//!    *arbitrary* (denormalized) commits — duplicates, insert/delete pairs,
//!    no-op updates, self-loops, fresh nodes — must agree with from-scratch
//!    batch recomputation after every commit;
//! 2. the same under a randomly interleaved *lifecycle*: commits,
//!    deregistrations and lazy registrations across the 5 view classes,
//!    with every surviving view audited after every commit (lazy-joined
//!    views must match from-scratch recomputation exactly, from their very
//!    first commit);
//! 3. *crash replay*: a write-ahead-logged engine driven through random
//!    commit/lifecycle interleavings, crashed (dropped) at a random epoch
//!    and rebuilt with `Engine::recover` must serve answers bit-identical
//!    to a twin engine that never crashed — for all five view classes,
//!    both right after recovery and across the remaining commit stream;
//! 4. *replication*: log-shipped followers attaching at random epochs
//!    (one pinned via `Engine::replica`, one unpinned via
//!    `Replica::attach`) and catching up after every commit must serve
//!    all five classes bit-identical to the leader *and* to a
//!    never-replicated twin at every compared frontier — including a
//!    fresh follower joining after the log has been compacted;
//! 5. *coalescing*: random submission streams grouped into arbitrary
//!    commit ticks (each tick concatenating its submissions in arrival
//!    order, exactly like the ingest front door) and driven through the
//!    pipelined `prepare`/`apply_prepared` path on a WAL-logged,
//!    pool-fanned engine must answer bit-identical to a twin that commits
//!    every submission individually — for all five view classes, with a
//!    deliberately panicking canary view quarantined on both sides, and
//!    with recovery from the journal landing on the same frontier;
//! 6. *crash mid-tick*: a torn WAL append inside a coalesced tick must
//!    fail that commit atomically; recovery lands on a clean epoch
//!    boundary (never a partially applied mega-batch) and retrying the
//!    tick lands it exactly once, converging back to the per-submission
//!    twin.

use incgraph::graph::graph::graph_from;
use incgraph::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

/// The five classes' canonical answers, as one comparison key for the
/// crash-replay property: (rpq pairs, scc components, kws signature, iso
/// matches, rule facts with their support counts).
type ClassAnswers = (
    Vec<(NodeId, NodeId)>,
    Vec<Vec<NodeId>>,
    Vec<(NodeId, Vec<u32>)>,
    Vec<incgraph::iso::MatchKey>,
    Vec<(Fact, u32)>,
);

fn rpq_query() -> Regex {
    let mut it = LabelInterner::new();
    // Interner ids follow first-use order: l0→0, l1→1, l2→2, matching the
    // `i % 3` node labels below.
    Regex::parse("l0.(l1+l2)*.l2", &mut it).unwrap()
}

/// The delta-rule program for the fifth class: executability anchored at
/// label-1 nodes, propagated along edges — recursive, so random deletion
/// streams exercise the support-counting + over-delete/re-derive repair
/// machinery (cycles reachable from an anchor have cyclic support).
fn rules_program() -> Program {
    let mut rs = RuleSet::new();
    let exec = rs.predicate("exec", 1).unwrap();
    rs.rule(exec, &[v(0)], vec![Atom::has_label(v(0), Label(1))])
        .unwrap();
    rs.rule(
        exec,
        &[v(1)],
        vec![Atom::pred(exec, &[v(0)]), Atom::edge(v(0), v(1))],
    )
    .unwrap();
    rs.compile().unwrap()
}

/// A rule view's bit-identity key: every derived fact *and* its exact
/// support count, sorted.
fn rules_answer(view: &IncRules) -> Vec<(Fact, u32)> {
    view.sorted_facts()
        .into_iter()
        .map(|f| (f, view.support(f.pred, f.args())))
        .collect()
}

/// Build an engine over the given graph with all five classes registered.
fn engine_with_views(g: DynamicGraph) -> Engine {
    let mut engine = Engine::new(g);
    engine
        .register(IncRpq::new(engine.graph(), &rpq_query()))
        .unwrap();
    engine.register(IncScc::new(engine.graph())).unwrap();
    engine
        .register(IncKws::new(
            engine.graph(),
            KwsQuery::new(vec![Label(1), Label(2)], 2),
        ))
        .unwrap();
    engine
        .register(IncIso::new(
            engine.graph(),
            Pattern::from_parts(&[0, 1, 2], &[(0, 1), (1, 2)]),
        ))
        .unwrap();
    engine
        .register(IncRules::new(engine.graph(), rules_program()))
        .unwrap();
    engine
}

fn batch_from_raw(raw: &[(bool, u32, u32)]) -> UpdateBatch {
    raw.iter()
        .map(|&(ins, a, b)| {
            if ins {
                Update::insert(NodeId(a), NodeId(b))
            } else {
                Update::delete(NodeId(a), NodeId(b))
            }
        })
        .collect()
}

/// Concatenate a tick group's submissions in arrival order — exactly what
/// the ingest loop's coalescer does before the engine normalizes once.
fn coalesce(group: &[UpdateBatch]) -> UpdateBatch {
    group.iter().flat_map(|b| b.iter().copied()).collect()
}

/// Split per-client submissions into tick groups: bit `i % 64` of `mask`
/// decides whether submission `i` starts a new tick.
fn split_groups(batches: &[UpdateBatch], mask: u64) -> Vec<Vec<UpdateBatch>> {
    let mut groups: Vec<Vec<UpdateBatch>> = vec![Vec::new()];
    for (i, b) in batches.iter().enumerate() {
        if i > 0 && (mask >> (i % 64)) & 1 == 1 {
            groups.push(Vec::new());
        }
        groups.last_mut().unwrap().push(b.clone());
    }
    groups
}

/// Canonical five-class answers under the default registration labels
/// (the names `engine_with_views` registers under).
fn five_class_answers(e: &Engine) -> ClassAnswers {
    let rpq: ViewHandle<IncRpq> = e.typed(e.find("rpq").unwrap()).unwrap();
    let scc: ViewHandle<IncScc> = e.typed(e.find("scc").unwrap()).unwrap();
    let kws: ViewHandle<IncKws> = e.typed(e.find("kws").unwrap()).unwrap();
    let iso: ViewHandle<IncIso> = e.typed(e.find("iso").unwrap()).unwrap();
    let rules: ViewHandle<IncRules> = e.typed(e.find("rules").unwrap()).unwrap();
    (
        e.view(&rpq).unwrap().sorted_answer(),
        e.view(&scc).unwrap().components(),
        e.view(&kws).unwrap().answer_signature(),
        e.view(&iso).unwrap().sorted_matches(),
        rules_answer(e.view(&rules).unwrap()),
    )
}

/// Re-register the five classes under their default labels from the
/// engine's *current* graph — the post-recovery re-join step.
fn register_five_lazily(engine: &mut Engine) {
    engine
        .register_lazy("rpq", IncRpq::init(rpq_query()))
        .unwrap();
    engine.register_lazy("scc", IncScc::init()).unwrap();
    engine
        .register_lazy(
            "kws",
            IncKws::init(KwsQuery::new(vec![Label(1), Label(2)], 2)),
        )
        .unwrap();
    engine
        .register_lazy(
            "iso",
            IncIso::init(Pattern::from_parts(&[0, 1, 2], &[(0, 1), (1, 2)])),
        )
        .unwrap();
    engine
        .register_lazy("rules", IncRules::init(rules_program()))
        .unwrap();
}

/// A deliberately faulty view: panics on its first apply and is
/// quarantined by the engine. Rides on both engines in the coalescing
/// property so bit-identity is pinned *under quarantine* too.
#[derive(Debug, Default, Clone)]
struct Canary {
    applies: u64,
}

impl incgraph::core::IncView for Canary {
    fn name(&self) -> &str {
        "canary"
    }
    fn apply(&mut self, _g: &DynamicGraph, _delta: &UpdateBatch) {
        self.applies += 1;
        if self.applies == 1 {
            panic!("deliberate canary failure");
        }
    }
    fn work(&self) -> WorkStats {
        WorkStats::default()
    }
    fn reset_work(&mut self) {}
    fn verify_against_batch(&self, _g: &DynamicGraph) -> Result<(), String> {
        Ok(())
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
    fn clone_view(&self) -> Box<dyn incgraph::core::IncView> {
        Box::new(self.clone())
    }
}

/// Run `f` with panic messages suppressed — the canary's deliberate panics
/// (caught and quarantined by the engine) would otherwise spam the test
/// output. The hook is process-global, so swaps are serialized.
fn quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    use std::panic::PanicHookInfo;
    use std::sync::{Mutex, MutexGuard};
    type PrevHook = Box<dyn Fn(&PanicHookInfo<'_>) + Sync + Send>;
    static HOOK_LOCK: Mutex<()> = Mutex::new(());
    struct Restore<'a> {
        prev: Option<PrevHook>,
        _serialize: MutexGuard<'a, ()>,
    }
    impl Drop for Restore<'_> {
        fn drop(&mut self) {
            if let Some(prev) = self.prev.take() {
                std::panic::set_hook(prev);
            }
        }
    }
    let guard = Restore {
        _serialize: HOOK_LOCK.lock().unwrap_or_else(|p| p.into_inner()),
        prev: Some(std::panic::take_hook()),
    };
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    drop(guard);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn all_views_agree_with_batch_recomputation_after_every_commit(
        (n, edges, commits) in (8u32..18).prop_flat_map(|n| (
            Just(n),
            // Initial edges: arbitrary ordered pairs, duplicates allowed
            // (the graph's edge set dedupes).
            proptest::collection::vec(
                (0..n, 0..n).prop_filter("no initial self-loops", |(a, b)| a != b),
                10..40,
            ),
            // 1–4 commits of raw unit updates. Ids range past n so
            // insertions create fresh (default-labelled) nodes; nothing
            // forbids duplicates, insert/delete pairs, no-ops or
            // self-loops — that is the point.
            proptest::collection::vec(
                proptest::collection::vec(
                    (any::<bool>(), 0..n + 3, 0..n + 3),
                    1..14,
                ),
                1..5,
            ),
        ))
    ) {
        let labels: Vec<u32> = (0..n).map(|i| i % 3).collect();
        let g = graph_from(&labels, &edges);
        let mut engine = engine_with_views(g);

        let mut last_epoch = engine.epoch();
        for (round, raw) in commits.iter().enumerate() {
            let batch = batch_from_raw(raw);
            let receipt = engine.commit(&batch).unwrap();

            // Receipt arithmetic is conserved; the epoch advances exactly
            // when something was applied.
            prop_assert_eq!(receipt.submitted, raw.len());
            prop_assert_eq!(receipt.applied + receipt.dropped, receipt.submitted);
            if receipt.is_noop() {
                prop_assert_eq!(receipt.epoch, last_epoch);
            } else {
                prop_assert_eq!(receipt.epoch, last_epoch + 1);
                prop_assert_eq!(receipt.per_view.len(), 5);
            }
            last_epoch = receipt.epoch;

            // The heart of the property: every registered view equals its
            // from-scratch batch recomputation on the current graph.
            if let Err(failures) = engine.verify_all() {
                panic!("commit {round}: views diverged from batch recomputation: {failures}");
            }
        }
    }

    #[test]
    fn lifecycle_interleavings_keep_every_surviving_view_consistent(
        (n, edges, rounds) in (8u32..16).prop_flat_map(|n| (
            Just(n),
            proptest::collection::vec(
                (0..n, 0..n).prop_filter("no initial self-loops", |(a, b)| a != b),
                10..30,
            ),
            // 3–7 rounds; each round: a lifecycle op (0 = none,
            // 1 = deregister, 2 = lazy-register), a pick that selects the
            // op's target (view slot / class), and a raw commit batch.
            proptest::collection::vec(
                (
                    0u32..3,
                    0u32..64,
                    proptest::collection::vec(
                        (any::<bool>(), 0..n + 3, 0..n + 3),
                        1..10,
                    ),
                ),
                3..8,
            ),
        ))
    ) {
        let labels: Vec<u32> = (0..n).map(|i| i % 3).collect();
        let g = graph_from(&labels, &edges);
        let mut engine = engine_with_views(g);
        // Shadow roster of live labels, kept in sync with the registry.
        let mut live: Vec<String> =
            engine.labels().map(str::to_owned).collect();
        let mut fresh = 0u32;

        for (round, (op, pick, raw)) in rounds.iter().enumerate() {
            match op {
                // Deregister a pseudo-randomly picked live view; its label
                // frees up, its handle goes stale, its totals retire.
                1 if !live.is_empty() => {
                    let victim = live.remove((*pick as usize) % live.len());
                    let id = engine.find(&victim).expect("live view findable");
                    let retired_before = engine.retired().len();
                    let totals = engine.deregister(id).unwrap();
                    prop_assert_eq!(&*totals.label, victim.as_str());
                    prop_assert_eq!(engine.retired().len(), retired_before + 1);
                    prop_assert!(engine.find(&victim).is_none());
                    prop_assert!(engine.view_dyn(id).is_err(), "stale after deregister");
                }
                // Lazily register a fresh view of a pseudo-randomly picked
                // class: its initial state is built from the *current*
                // graph, mid-stream.
                2 => {
                    fresh += 1;
                    let label = match pick % 5 {
                        0 => {
                            let l = format!("rpq:g{fresh}");
                            engine.register_lazy(l.as_str(), IncRpq::init(rpq_query())).unwrap();
                            l
                        }
                        1 => {
                            let l = format!("scc:g{fresh}");
                            engine.register_lazy(l.as_str(), IncScc::init()).unwrap();
                            l
                        }
                        2 => {
                            let l = format!("kws:g{fresh}");
                            engine.register_lazy(
                                l.as_str(),
                                IncKws::init(KwsQuery::new(vec![Label(1), Label(2)], 2)),
                            ).unwrap();
                            l
                        }
                        3 => {
                            let l = format!("iso:g{fresh}");
                            engine.register_lazy(
                                l.as_str(),
                                IncIso::init(Pattern::from_parts(&[0, 1, 2], &[(0, 1), (1, 2)])),
                            ).unwrap();
                            l
                        }
                        _ => {
                            let l = format!("rules:g{fresh}");
                            engine.register_lazy(l.as_str(), IncRules::init(rules_program())).unwrap();
                            l
                        }
                    };
                    live.push(label.clone());
                    // A lazy joiner is consistent immediately, before its
                    // first commit: exact match with from-scratch state.
                    let id = engine.find(&label).expect("lazy view findable");
                    prop_assert!(engine.verify(id).is_ok(), "lazy view consistent at join");
                }
                _ => {}
            }
            prop_assert_eq!(engine.view_count(), live.len());

            let receipt = engine.commit(&batch_from_raw(raw)).unwrap();
            prop_assert_eq!(receipt.applied + receipt.dropped, receipt.submitted);
            if !receipt.is_noop() {
                prop_assert_eq!(receipt.per_view.len(), live.len());
                prop_assert_eq!(receipt.skipped_quarantined, 0);
            }

            // Audit every surviving view after every commit — lazy joiners
            // included, against from-scratch recomputation.
            if let Err(failures) = engine.verify_all() {
                panic!("round {round}: surviving views diverged: {failures}");
            }
            let mut roster: Vec<&str> = live.iter().map(String::as_str).collect();
            roster.sort_unstable();
            let mut got: Vec<&str> = engine.labels().collect();
            got.sort_unstable();
            prop_assert_eq!(got, roster, "registry roster matches shadow roster");
        }
    }

    #[test]
    fn crash_replay_recovers_all_five_classes_bit_identically(
        (n, edges, rounds, crash_pick) in (8u32..16).prop_flat_map(|n| (
            Just(n),
            proptest::collection::vec(
                (0..n, 0..n).prop_filter("no initial self-loops", |(a, b)| a != b),
                10..30,
            ),
            // Each round: a lifecycle op (0 = none, 1 = deregister,
            // 2 = lazy-register), its target pick, and a raw commit batch
            // — the same op/commit alphabet as the lifecycle property.
            proptest::collection::vec(
                (
                    0u32..3,
                    0u32..64,
                    proptest::collection::vec(
                        (any::<bool>(), 0..n + 3, 0..n + 3),
                        1..10,
                    ),
                ),
                3..7,
            ),
            any::<u32>(),
        ))
    ) {
        // The canonical answers of the five classes under their
        // post-crash labels — the bit-identity comparison key.
        fn class_answers(engine: &Engine) -> Result<ClassAnswers, EngineError> {
            let rpq: ViewHandle<IncRpq> =
                engine.typed(engine.find("post:rpq").expect("post:rpq live"))?;
            let scc: ViewHandle<IncScc> =
                engine.typed(engine.find("post:scc").expect("post:scc live"))?;
            let kws: ViewHandle<IncKws> =
                engine.typed(engine.find("post:kws").expect("post:kws live"))?;
            let iso: ViewHandle<IncIso> =
                engine.typed(engine.find("post:iso").expect("post:iso live"))?;
            let rules: ViewHandle<IncRules> =
                engine.typed(engine.find("post:rules").expect("post:rules live"))?;
            Ok((
                engine.view(&rpq)?.sorted_answer(),
                engine.view(&scc)?.components(),
                engine.view(&kws)?.answer_signature(),
                engine.view(&iso)?.sorted_matches(),
                rules_answer(engine.view(&rules)?),
            ))
        }
        /// Register the five classes under `post:` labels (used on both
        /// engines right after the crash point, so both build from what
        /// each believes the graph is — the recovered one from replay).
        fn register_post(engine: &mut Engine) {
            engine.register_lazy("post:rpq", IncRpq::init(rpq_query())).unwrap();
            engine.register_lazy("post:scc", IncScc::init()).unwrap();
            engine.register_lazy(
                "post:kws",
                IncKws::init(KwsQuery::new(vec![Label(1), Label(2)], 2)),
            ).unwrap();
            engine.register_lazy(
                "post:iso",
                IncIso::init(Pattern::from_parts(&[0, 1, 2], &[(0, 1), (1, 2)])),
            ).unwrap();
            engine.register_lazy("post:rules", IncRules::init(rules_program())).unwrap();
        }

        let labels: Vec<u32> = (0..n).map(|i| i % 3).collect();
        let g = graph_from(&labels, &edges);

        // Twin trajectories over one script: `durable` journals through a
        // shared in-memory backend and will crash; `twin` never crashes.
        let backend = MemBackend::new();
        let mut durable = Some(
            Engine::new(g.clone())
                .with_log(Arc::new(backend.clone()) as Arc<dyn LogBackend>)
                .unwrap(),
        );
        durable.as_mut().unwrap().set_checkpoint_every(2);
        let mut twin = Engine::new(g);
        for e in [durable.as_mut().unwrap(), &mut twin] {
            e.register(IncRpq::new(e.graph(), &rpq_query())).unwrap();
            e.register(IncScc::new(e.graph())).unwrap();
            e.register(IncRules::new(e.graph(), rules_program())).unwrap();
        }
        let mut live: Vec<String> = vec!["rpq".into(), "scc".into(), "rules".into()];
        let mut fresh = 0u32;

        let crash_round = (crash_pick as usize) % rounds.len();
        let mut recovered: Option<Engine> = None;
        for (round, (op, pick, raw)) in rounds.iter().enumerate() {
            if recovered.is_none() {
                // Pre-crash phase: identical lifecycle script on both.
                match op {
                    1 if !live.is_empty() => {
                        let victim = live.remove((*pick as usize) % live.len());
                        for e in [durable.as_mut().unwrap(), &mut twin] {
                            let id = e.find(&victim).expect("live view findable");
                            e.deregister(id).unwrap();
                        }
                    }
                    2 => {
                        fresh += 1;
                        let label = format!("rpq:g{fresh}");
                        for e in [durable.as_mut().unwrap(), &mut twin] {
                            e.register_lazy(label.as_str(), IncRpq::init(rpq_query())).unwrap();
                        }
                        live.push(label);
                    }
                    _ => {}
                }
            }
            let batch = batch_from_raw(raw);
            let receipt_twin = twin.commit(&batch).unwrap();
            match (&mut recovered, &mut durable) {
                (Some(r), _) => {
                    // Post-crash phase: the recovered engine serves the
                    // same stream with answers bit-identical to the twin.
                    let receipt = r.commit(&batch).unwrap();
                    prop_assert_eq!(receipt.epoch, receipt_twin.epoch);
                    prop_assert_eq!(class_answers(r).unwrap(), class_answers(&twin).unwrap());
                }
                (None, Some(d)) => {
                    d.commit(&batch).unwrap();
                }
                (None, None) => unreachable!("durable lives until the crash"),
            }

            if recovered.is_none() && round == crash_round {
                // CRASH: drop the logged engine mid-stream, then rebuild
                // it purely from the journal.
                let epoch = durable.as_ref().unwrap().epoch();
                durable = None;
                let mut r = Engine::recover(Arc::new(backend.clone()) as Arc<dyn LogBackend>)
                    .unwrap();
                prop_assert_eq!(r.epoch(), epoch, "recovered at the crash epoch");
                prop_assert_eq!(
                    r.graph().sorted_edges(),
                    twin.graph().sorted_edges(),
                    "replayed edge set matches the never-crashed graph"
                );
                prop_assert_eq!(r.graph().node_count(), twin.graph().node_count());
                // Both engines get fresh `post:` views of all 4 classes —
                // the recovered one builds them from the replayed graph.
                register_post(&mut r);
                register_post(&mut twin);
                prop_assert_eq!(
                    class_answers(&r).unwrap(),
                    class_answers(&twin).unwrap(),
                    "post-recovery answers match immediately"
                );
                recovered = Some(r);
            }
        }
        // Final audits: every recovered view also agrees with from-scratch
        // recomputation on its own graph.
        let r = recovered.expect("crash point inside the script");
        if let Err(failures) = r.verify_all() {
            panic!("recovered views diverged from recomputation: {failures}");
        }
    }

    #[test]
    fn replicas_joining_at_random_epochs_converge_bit_identically(
        (n, edges, rounds, picks) in (8u32..16).prop_flat_map(|n| (
            Just(n),
            proptest::collection::vec(
                (0..n, 0..n).prop_filter("no initial self-loops", |(a, b)| a != b),
                10..30,
            ),
            // 4–7 rounds of raw (denormalized) commit batches.
            proptest::collection::vec(
                proptest::collection::vec(
                    (any::<bool>(), 0..n + 3, 0..n + 3),
                    1..10,
                ),
                4..8,
            ),
            // Two join epochs, one per follower, reduced mod the round
            // count below.
            (any::<u32>(), any::<u32>()),
        ))
    ) {
        // A follower's five typed handles, for reading its answers.
        struct FollowerViews {
            rpq: ReplicaHandle<IncRpq>,
            scc: ReplicaHandle<IncScc>,
            kws: ReplicaHandle<IncKws>,
            iso: ReplicaHandle<IncIso>,
            rules: ReplicaHandle<IncRules>,
        }
        fn register_follower(r: &mut Replica) -> FollowerViews {
            FollowerViews {
                rpq: r.register("rpq", IncRpq::init(rpq_query())).unwrap(),
                scc: r.register("scc", IncScc::init()).unwrap(),
                kws: r
                    .register("kws", IncKws::init(KwsQuery::new(vec![Label(1), Label(2)], 2)))
                    .unwrap(),
                iso: r
                    .register(
                        "iso",
                        IncIso::init(Pattern::from_parts(&[0, 1, 2], &[(0, 1), (1, 2)])),
                    )
                    .unwrap(),
                rules: r.register("rules", IncRules::init(rules_program())).unwrap(),
            }
        }
        fn follower_answers(r: &Replica, v: &FollowerViews) -> ClassAnswers {
            (
                r.view(&v.rpq).unwrap().sorted_answer(),
                r.view(&v.scc).unwrap().components(),
                r.view(&v.kws).unwrap().answer_signature(),
                r.view(&v.iso).unwrap().sorted_matches(),
                rules_answer(r.view(&v.rules).unwrap()),
            )
        }
        fn leader_answers(e: &Engine) -> ClassAnswers {
            five_class_answers(e)
        }
        /// One follower's full convergence check against both references.
        fn assert_converged(r: &mut Replica, v: &FollowerViews, leader: &Engine, twin: &Engine) {
            r.catch_up().unwrap();
            prop_assert_eq!(r.frontier(), leader.epoch(), "follower at the head");
            prop_assert_eq!(r.status().unwrap().lag, 0);
            prop_assert_eq!(
                r.graph().sorted_edges(),
                leader.graph().sorted_edges(),
                "follower graph matches the leader"
            );
            let got = follower_answers(r, v);
            prop_assert_eq!(&got, &leader_answers(leader), "follower == leader");
            prop_assert_eq!(&got, &leader_answers(twin), "follower == never-replicated twin");
            r.verify_all().unwrap();
        }

        let labels: Vec<u32> = (0..n).map(|i| i % 3).collect();
        let g = graph_from(&labels, &edges);

        let backend = MemBackend::new();
        let mut leader = engine_with_views(g.clone());
        leader = leader
            .with_log(Arc::new(backend.clone()) as Arc<dyn LogBackend>)
            .unwrap();
        leader.set_checkpoint_every(2);
        let mut twin = engine_with_views(g);

        let join_a = (picks.0 as usize) % rounds.len();
        let join_b = (picks.1 as usize) % rounds.len();
        let mut follower_a: Option<(Replica, FollowerViews)> = None; // pinned
        let mut follower_b: Option<(Replica, FollowerViews)> = None; // unpinned

        for (round, raw) in rounds.iter().enumerate() {
            // Followers join *before* this round's commit, at whatever
            // epoch the leader happens to be at.
            if round == join_a {
                let mut r = leader.replica().unwrap();
                prop_assert!(r.is_pinned());
                let v = register_follower(&mut r);
                assert_converged(&mut r, &v, &leader, &twin);
                follower_a = Some((r, v));
            }
            if round == join_b {
                let mut r =
                    Replica::attach(Arc::new(backend.clone()) as Arc<dyn LogBackend>).unwrap();
                prop_assert!(!r.is_pinned());
                let v = register_follower(&mut r);
                assert_converged(&mut r, &v, &leader, &twin);
                follower_b = Some((r, v));
            }

            let batch = batch_from_raw(raw);
            let receipt = leader.commit(&batch).unwrap();
            let receipt_twin = twin.commit(&batch).unwrap();
            prop_assert_eq!(receipt.epoch, receipt_twin.epoch, "twin trajectories agree");

            for (r, v) in [&mut follower_a, &mut follower_b].into_iter().flatten() {
                assert_converged(r, v, &leader, &twin);
            }
        }

        // Both followers are at the head, so compaction may drop every
        // segment behind the newest checkpoint — and a *fresh* follower
        // joining the compacted log must still converge bit-identically.
        let c = leader.compact_log().unwrap();
        let mut late = leader.replica().unwrap();
        prop_assert!(
            late.seed_base() >= c.base_epoch,
            "post-compaction joiner seeds at or past the retained base"
        );
        let v = register_follower(&mut late);
        assert_converged(&mut late, &v, &leader, &twin);
    }

    #[test]
    fn coalesced_ticks_match_per_submission_commits_bit_identically(
        (n, edges, subs, mask) in (8u32..14).prop_flat_map(|n| (
            Just(n),
            proptest::collection::vec(
                (0..n, 0..n).prop_filter("no initial self-loops", |(a, b)| a != b),
                10..30,
            ),
            // 4–10 client submissions of raw unit updates — the streams the
            // ingest front door would coalesce. Duplicates, insert/delete
            // pairs, no-ops and fresh nodes all allowed, as ever.
            proptest::collection::vec(
                proptest::collection::vec(
                    (any::<bool>(), 0..n + 3, 0..n + 3),
                    1..8,
                ),
                4..11,
            ),
            any::<u64>(),
        ))
    ) {
        let labels: Vec<u32> = (0..n).map(|i| i % 3).collect();
        let g = graph_from(&labels, &edges);

        // A: WAL-logged, pool-fanned, commits coalesced mega-batches
        // through the pipelined prepare/apply_prepared driver (tick n+1's
        // WAL append in flight during tick n's fan-out). B: a twin that
        // never coalesces — one plain commit per submission.
        let backend = MemBackend::new();
        let mut a = {
            let mut a = engine_with_views(g.clone())
                .with_log(Arc::new(backend.clone()) as Arc<dyn LogBackend>)
                .unwrap();
            a.set_checkpoint_every(3);
            a.set_commit_mode(CommitMode::Parallel { threads: 2 });
            a
        };
        let mut b = engine_with_views(g);
        // A canary that panics on its first apply rides on both engines:
        // coalescing equality must hold under a quarantined view too.
        a.register(Canary::default()).unwrap();
        b.register(Canary::default()).unwrap();

        let batches: Vec<UpdateBatch> = subs.iter().map(|raw| batch_from_raw(raw)).collect();
        let groups = split_groups(&batches, mask);
        let megas: Vec<UpdateBatch> = groups.iter().map(|g| coalesce(g)).collect();

        let (ticks_a, commits_b) = quiet_panics(|| {
            // Pipelined driver: prepare tick 0, then every apply carries
            // the next tick's prepare in flight.
            let mut ticks_a = 0u64;
            let mut staged = a.prepare(&megas[0]).unwrap();
            for next in megas.iter().skip(1) {
                let (receipt, piped) = a.apply_prepared(staged, Some(next)).unwrap();
                ticks_a += u64::from(!receipt.is_noop());
                staged = piped.expect("pipelined prepare was requested").unwrap();
            }
            let (receipt, tail) = a.apply_prepared(staged, None).unwrap();
            ticks_a += u64::from(!receipt.is_noop());
            prop_assert!(tail.is_none(), "no prepare requested on the last tick");

            // Twin: one commit per submission, same arrival order.
            let mut commits_b = 0u64;
            for sub in &batches {
                commits_b += u64::from(!b.commit(sub).unwrap().is_noop());
            }
            (ticks_a, commits_b)
        });

        // The heart of the property: identical graphs and bit-identical
        // answers for all five classes, despite different tick boundaries
        // (epochs legitimately differ — one bump per non-noop tick vs one
        // per non-noop submission).
        prop_assert_eq!(a.epoch(), ticks_a);
        prop_assert_eq!(b.epoch(), commits_b);
        prop_assert_eq!(a.graph().sorted_edges(), b.graph().sorted_edges());
        prop_assert_eq!(a.graph().node_count(), b.graph().node_count());
        prop_assert_eq!(five_class_answers(&a), five_class_answers(&b));
        a.verify_all().unwrap();
        b.verify_all().unwrap();

        // The canary quarantined at each engine's first non-noop commit.
        // (A whole tick can normalize to a no-op even when its member
        // submissions don't — e.g. an insert/delete pair coalesced away —
        // so each side is gated on its own non-noop count.)
        for (e, nonnoop) in [(&a, ticks_a), (&b, commits_b)] {
            if nonnoop > 0 {
                let canary = e.find("canary").expect("canary stays registered");
                prop_assert!(
                    matches!(e.state(canary).unwrap(), ViewState::Quarantined { .. }),
                    "canary quarantined after the first non-noop commit"
                );
            }
        }

        // The journal recorded whole mega-batches: recovery lands on A's
        // exact frontier — no re-split or torn ticks.
        let r = Engine::recover(Arc::new(backend.clone()) as Arc<dyn LogBackend>).unwrap();
        prop_assert_eq!(r.epoch(), a.epoch());
        prop_assert_eq!(r.graph().sorted_edges(), a.graph().sorted_edges());
        prop_assert_eq!(r.graph().node_count(), a.graph().node_count());
    }

    #[test]
    fn crash_mid_tick_recovers_to_a_clean_epoch_boundary(
        (n, edges, subs, mask, (crash_pick, keep)) in (8u32..14).prop_flat_map(|n| (
            Just(n),
            proptest::collection::vec(
                (0..n, 0..n).prop_filter("no initial self-loops", |(a, b)| a != b),
                10..30,
            ),
            proptest::collection::vec(
                proptest::collection::vec(
                    (any::<bool>(), 0..n + 3, 0..n + 3),
                    1..8,
                ),
                4..9,
            ),
            any::<u64>(),
            // Crash-tick pick, and how many bytes of the torn record the
            // fault keeps: 0 (nothing hit the backend) up past
            // whole-record size (fully written but never acknowledged).
            (any::<u32>(), 0usize..64),
        ))
    ) {
        let labels: Vec<u32> = (0..n).map(|i| i % 3).collect();
        let g = graph_from(&labels, &edges);

        let backend = ChaosBackend::new(Arc::new(MemBackend::new()), FaultPlan::none());
        let mut a = engine_with_views(g.clone())
            .with_log(Arc::new(backend.clone()) as Arc<dyn LogBackend>)
            .unwrap();
        a.set_checkpoint_every(2);
        let mut b = engine_with_views(g);

        let batches: Vec<UpdateBatch> = subs.iter().map(|raw| batch_from_raw(raw)).collect();
        let groups = split_groups(&batches, mask);
        let megas: Vec<UpdateBatch> = groups.iter().map(|g| coalesce(g)).collect();

        let crash_group = (crash_pick as usize) % megas.len();
        // The injector arms at the chosen tick but only fires on the first
        // *append* — no-op ticks never touch the log and slide through.
        let mut armed = false;
        for (k, mega) in megas.iter().enumerate() {
            if k == crash_group {
                backend.fail_next_append(keep);
                armed = true;
            }
            let epoch_before = a.epoch();
            match a.commit(mega) {
                Ok(receipt) => {
                    if armed {
                        prop_assert!(
                            receipt.is_noop(),
                            "an armed fault must fail the first real append"
                        );
                    }
                }
                Err(_) => {
                    prop_assert!(armed, "only the injected tear may fail a commit");
                    armed = false;
                    // All-or-nothing: the torn tick moved nothing — not the
                    // graph, not the epoch, not a single view.
                    prop_assert_eq!(a.epoch(), epoch_before);
                    // CRASH: drop the wounded engine, rebuild from the
                    // journal alone. Recovery must land on an epoch
                    // *boundary*: either the record never became durable
                    // (torn tail, skipped) or — when the fault kept every
                    // byte — it is replayed whole. A partially applied
                    // mega-batch is impossible either way.
                    let mut r =
                        Engine::recover(Arc::new(backend.clone()) as Arc<dyn LogBackend>)
                            .unwrap();
                    prop_assert!(
                        r.epoch() == epoch_before || r.epoch() == epoch_before + 1,
                        "recovered epoch {} is a clean boundary around pre-tick epoch {}",
                        r.epoch(),
                        epoch_before
                    );
                    r.set_checkpoint_every(2);
                    register_five_lazily(&mut r);
                    // Retrying the whole tick is idempotent under
                    // normalization: it lands exactly once whether or not
                    // the replay already carried it.
                    r.commit(mega).unwrap();
                    prop_assert_eq!(
                        r.epoch(),
                        epoch_before + 1,
                        "the torn tick lands exactly once after retry"
                    );
                    a = r;
                }
            }
            for sub in &groups[k] {
                b.commit(sub).unwrap();
            }
            prop_assert_eq!(a.graph().sorted_edges(), b.graph().sorted_edges());
        }

        prop_assert_eq!(a.graph().node_count(), b.graph().node_count());
        prop_assert_eq!(five_class_answers(&a), five_class_answers(&b));
        a.verify_all().unwrap();
        b.verify_all().unwrap();

        // And the journal is still coherent end-to-end: a second recovery
        // (over the rotated-past torn bytes) reaches the same frontier.
        let r2 = Engine::recover(Arc::new(backend.clone()) as Arc<dyn LogBackend>).unwrap();
        prop_assert_eq!(r2.epoch(), a.epoch());
        prop_assert_eq!(r2.graph().sorted_edges(), a.graph().sorted_edges());
    }

    #[test]
    fn pinned_snapshots_stay_bit_identical_while_commits_and_lifecycle_flow(
        (n, edges, rounds, crash_pick) in (8u32..14).prop_flat_map(|n| (
            Just(n),
            proptest::collection::vec(
                (0..n, 0..n).prop_filter("no initial self-loops", |(a, b)| a != b),
                10..30,
            ),
            // ≥ 8 rounds; each: a lifecycle op on *extra* views (0 = none,
            // 1 = deregister, 2 = lazy-register — the five core classes
            // stay registered so their labels resolve in every snapshot),
            // its target pick, a raw commit batch, and whether a reader
            // pins a snapshot right after the commit.
            proptest::collection::vec(
                (
                    0u32..3,
                    0u32..64,
                    proptest::collection::vec(
                        (any::<bool>(), 0..n + 3, 0..n + 3),
                        1..8,
                    ),
                    any::<bool>(),
                ),
                8..12,
            ),
            any::<u32>(),
        ))
    ) {
        /// The five classes' answers as served by a pinned snapshot —
        /// label-resolved and downcast, so the key is comparable with
        /// `five_class_answers` on a live engine.
        fn snap_answers(s: &Snapshot) -> ClassAnswers {
            fn get<'a, V: 'static>(s: &'a Snapshot, label: &str) -> &'a V {
                s.view_dyn(s.find(label).expect("core label published"))
                    .expect("core view active in snapshot")
                    .as_any()
                    .downcast_ref::<V>()
                    .expect("published cell has the registered type")
            }
            (
                get::<IncRpq>(s, "rpq").sorted_answer(),
                get::<IncScc>(s, "scc").components(),
                get::<IncKws>(s, "kws").answer_signature(),
                get::<IncIso>(s, "iso").sorted_matches(),
                rules_answer(get::<IncRules>(s, "rules")),
            )
        }

        let labels: Vec<u32> = (0..n).map(|i| i % 3).collect();
        let g = graph_from(&labels, &edges);

        // The serving engine journals through a WAL (it will crash at a
        // random round and recover); the twin never snapshots, never
        // crashes — it is the frozen reference a pin is compared against:
        // its answers *at the pinned epoch* are captured at pin time and
        // must keep matching the snapshot forever after.
        let backend = MemBackend::new();
        let mut engine = Some(
            engine_with_views(g.clone())
                .with_log(Arc::new(backend.clone()) as Arc<dyn LogBackend>)
                .unwrap(),
        );
        engine.as_mut().unwrap().set_checkpoint_every(3);
        let mut twin = engine_with_views(g);

        let crash_round = (crash_pick as usize) % rounds.len();
        let mut extra: Vec<String> = Vec::new();
        let mut fresh = 0u32;
        // Every pin ever taken: (snapshot, frozen expectation at its epoch).
        let mut pins: Vec<(Snapshot, ClassAnswers, Vec<Edge>)> = Vec::new();

        for (round, (op, pick, raw, pin)) in rounds.iter().enumerate() {
            let e = engine.as_mut().unwrap();
            // Lifecycle churn on extra views, mirrored on the twin so the
            // two engines stay structurally identical.
            match op {
                1 if !extra.is_empty() => {
                    let victim = extra.remove((*pick as usize) % extra.len());
                    for e in [&mut *e, &mut twin] {
                        let id = e.find(&victim).expect("extra view live");
                        e.deregister(id).unwrap();
                    }
                }
                2 => {
                    fresh += 1;
                    let label = format!("rpq:extra{fresh}");
                    for e in [&mut *e, &mut twin] {
                        e.register_lazy(label.as_str(), IncRpq::init(rpq_query())).unwrap();
                    }
                    extra.push(label);
                }
                _ => {}
            }

            let batch = batch_from_raw(raw);
            let receipt = e.commit(&batch).unwrap();
            let receipt_twin = twin.commit(&batch).unwrap();
            prop_assert_eq!(receipt.epoch, receipt_twin.epoch);

            if *pin || round == 0 {
                // A reader pins the newest published version; the frozen
                // expectation comes from the *twin* at this very epoch.
                let s = e.snapshot().unwrap();
                prop_assert_eq!(s.epoch(), e.epoch(), "head snapshot pins the commit frontier");
                let expected = five_class_answers(&twin);
                prop_assert_eq!(
                    &snap_answers(&s),
                    &expected,
                    "snapshot serves the twin's answers at pin time"
                );
                // Pinning the same epoch explicitly lands on the same data.
                let again = e.snapshot_at(s.epoch()).unwrap();
                prop_assert_eq!(again.epoch(), s.epoch());
                pins.push((s, expected, twin.graph().sorted_edges()));
            }

            // The heart of the property: *every* pin ever taken still
            // serves its frozen answers and graph, no matter how many
            // commits and lifecycle events have flowed since.
            for (s, expected, frozen_edges) in &pins {
                prop_assert_eq!(&snap_answers(s), expected, "pinned answers frozen");
                prop_assert_eq!(&s.graph().sorted_edges(), frozen_edges, "pinned graph frozen");
            }
            // GC keeps the version window bounded by the live pins:
            // retained versions ≤ distinct pinned epochs + the head.
            let mut pinned_epochs: Vec<u64> = pins.iter().map(|(s, _, _)| s.epoch()).collect();
            pinned_epochs.sort_unstable();
            pinned_epochs.dedup();
            prop_assert!(
                e.snapshot_store().window() <= pinned_epochs.len() + 1,
                "version window {} exceeds pins {} + 1",
                e.snapshot_store().window(),
                pinned_epochs.len()
            );

            if round == crash_round {
                // CRASH: the serving engine dies. Pinned snapshots are
                // self-contained Arcs — they must keep serving unchanged —
                // and the recovered engine publishes fresh versions.
                drop(engine.take());
                for (s, expected, _) in &pins {
                    prop_assert_eq!(&snap_answers(s), expected, "pins outlive the engine");
                }
                let mut r = Engine::recover(Arc::new(backend.clone()) as Arc<dyn LogBackend>)
                    .unwrap();
                prop_assert_eq!(r.epoch(), twin.epoch(), "recovered at the crash frontier");
                r.set_checkpoint_every(3);
                register_five_lazily(&mut r);
                for label in &extra {
                    r.register_lazy(label.as_str(), IncRpq::init(rpq_query())).unwrap();
                }
                // Re-registration republished: a fresh pin on the recovered
                // engine serves the twin's current answers immediately.
                let s = r.snapshot().unwrap();
                prop_assert_eq!(
                    snap_answers(&s),
                    five_class_answers(&twin),
                    "post-recovery snapshot matches the never-crashed twin"
                );
                engine = Some(r);
            }
        }

        // Epochs no pin held are gone (EpochRetired), future epochs are
        // not yet published (SnapshotUnavailable) — the error contract at
        // the window's two edges.
        let e = engine.as_ref().unwrap();
        let future = e.snapshot_store().head() + 1;
        prop_assert!(matches!(
            e.snapshot_at(future),
            Err(EngineError::SnapshotUnavailable { .. })
        ));
        let oldest = e.snapshot_store().oldest();
        if oldest > 0 {
            prop_assert!(matches!(
                e.snapshot_at(oldest - 1),
                Err(EngineError::EpochRetired { .. })
            ));
        }
        // Dropping every pin lets the next commit's GC shrink the window
        // to the head version alone.
        pins.clear();
        let e = engine.as_mut().unwrap();
        e.commit(&UpdateBatch::from_updates(vec![Update::insert(
            NodeId(0),
            NodeId(n),
        )]))
        .unwrap();
        prop_assert_eq!(e.snapshot_store().window(), 1, "no pins → head-only window");
    }
}
