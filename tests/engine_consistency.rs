//! Cross-view consistency properties for the engine.
//!
//! Two properties live here:
//!
//! 1. all four query classes registered on one engine, driven by
//!    *arbitrary* (denormalized) commits — duplicates, insert/delete pairs,
//!    no-op updates, self-loops, fresh nodes — must agree with from-scratch
//!    batch recomputation after every commit;
//! 2. the same under a randomly interleaved *lifecycle*: commits,
//!    deregistrations and lazy registrations across the 4 view classes,
//!    with every surviving view audited after every commit (lazy-joined
//!    views must match from-scratch recomputation exactly, from their very
//!    first commit).

use incgraph::graph::graph::graph_from;
use incgraph::prelude::*;
use proptest::prelude::*;

fn rpq_query() -> Regex {
    let mut it = LabelInterner::new();
    // Interner ids follow first-use order: l0→0, l1→1, l2→2, matching the
    // `i % 3` node labels below.
    Regex::parse("l0.(l1+l2)*.l2", &mut it).unwrap()
}

/// Build an engine over the given graph with all four classes registered.
fn engine_with_views(g: DynamicGraph) -> Engine {
    let mut engine = Engine::new(g);
    engine
        .register(IncRpq::new(engine.graph(), &rpq_query()))
        .unwrap();
    engine.register(IncScc::new(engine.graph())).unwrap();
    engine
        .register(IncKws::new(
            engine.graph(),
            KwsQuery::new(vec![Label(1), Label(2)], 2),
        ))
        .unwrap();
    engine
        .register(IncIso::new(
            engine.graph(),
            Pattern::from_parts(&[0, 1, 2], &[(0, 1), (1, 2)]),
        ))
        .unwrap();
    engine
}

fn batch_from_raw(raw: &[(bool, u32, u32)]) -> UpdateBatch {
    raw.iter()
        .map(|&(ins, a, b)| {
            if ins {
                Update::insert(NodeId(a), NodeId(b))
            } else {
                Update::delete(NodeId(a), NodeId(b))
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn all_views_agree_with_batch_recomputation_after_every_commit(
        (n, edges, commits) in (8u32..18).prop_flat_map(|n| (
            Just(n),
            // Initial edges: arbitrary ordered pairs, duplicates allowed
            // (the graph's edge set dedupes).
            proptest::collection::vec(
                (0..n, 0..n).prop_filter("no initial self-loops", |(a, b)| a != b),
                10..40,
            ),
            // 1–4 commits of raw unit updates. Ids range past n so
            // insertions create fresh (default-labelled) nodes; nothing
            // forbids duplicates, insert/delete pairs, no-ops or
            // self-loops — that is the point.
            proptest::collection::vec(
                proptest::collection::vec(
                    (any::<bool>(), 0..n + 3, 0..n + 3),
                    1..14,
                ),
                1..5,
            ),
        ))
    ) {
        let labels: Vec<u32> = (0..n).map(|i| i % 3).collect();
        let g = graph_from(&labels, &edges);
        let mut engine = engine_with_views(g);

        let mut last_epoch = engine.epoch();
        for (round, raw) in commits.iter().enumerate() {
            let batch = batch_from_raw(raw);
            let receipt = engine.commit(&batch).unwrap();

            // Receipt arithmetic is conserved; the epoch advances exactly
            // when something was applied.
            prop_assert_eq!(receipt.submitted, raw.len());
            prop_assert_eq!(receipt.applied + receipt.dropped, receipt.submitted);
            if receipt.is_noop() {
                prop_assert_eq!(receipt.epoch, last_epoch);
            } else {
                prop_assert_eq!(receipt.epoch, last_epoch + 1);
                prop_assert_eq!(receipt.per_view.len(), 4);
            }
            last_epoch = receipt.epoch;

            // The heart of the property: every registered view equals its
            // from-scratch batch recomputation on the current graph.
            if let Err(failures) = engine.verify_all() {
                panic!("commit {round}: views diverged from batch recomputation: {failures}");
            }
        }
    }

    #[test]
    fn lifecycle_interleavings_keep_every_surviving_view_consistent(
        (n, edges, rounds) in (8u32..16).prop_flat_map(|n| (
            Just(n),
            proptest::collection::vec(
                (0..n, 0..n).prop_filter("no initial self-loops", |(a, b)| a != b),
                10..30,
            ),
            // 3–7 rounds; each round: a lifecycle op (0 = none,
            // 1 = deregister, 2 = lazy-register), a pick that selects the
            // op's target (view slot / class), and a raw commit batch.
            proptest::collection::vec(
                (
                    0u32..3,
                    0u32..64,
                    proptest::collection::vec(
                        (any::<bool>(), 0..n + 3, 0..n + 3),
                        1..10,
                    ),
                ),
                3..8,
            ),
        ))
    ) {
        let labels: Vec<u32> = (0..n).map(|i| i % 3).collect();
        let g = graph_from(&labels, &edges);
        let mut engine = engine_with_views(g);
        // Shadow roster of live labels, kept in sync with the registry.
        let mut live: Vec<String> =
            engine.labels().map(str::to_owned).collect();
        let mut fresh = 0u32;

        for (round, (op, pick, raw)) in rounds.iter().enumerate() {
            match op {
                // Deregister a pseudo-randomly picked live view; its label
                // frees up, its handle goes stale, its totals retire.
                1 if !live.is_empty() => {
                    let victim = live.remove((*pick as usize) % live.len());
                    let id = engine.find(&victim).expect("live view findable");
                    let retired_before = engine.retired().len();
                    let totals = engine.deregister(id).unwrap();
                    prop_assert_eq!(&*totals.label, victim.as_str());
                    prop_assert_eq!(engine.retired().len(), retired_before + 1);
                    prop_assert!(engine.find(&victim).is_none());
                    prop_assert!(engine.view_dyn(id).is_err(), "stale after deregister");
                }
                // Lazily register a fresh view of a pseudo-randomly picked
                // class: its initial state is built from the *current*
                // graph, mid-stream.
                2 => {
                    fresh += 1;
                    let label = match pick % 4 {
                        0 => {
                            let l = format!("rpq:g{fresh}");
                            engine.register_lazy(l.as_str(), IncRpq::init(rpq_query())).unwrap();
                            l
                        }
                        1 => {
                            let l = format!("scc:g{fresh}");
                            engine.register_lazy(l.as_str(), IncScc::init()).unwrap();
                            l
                        }
                        2 => {
                            let l = format!("kws:g{fresh}");
                            engine.register_lazy(
                                l.as_str(),
                                IncKws::init(KwsQuery::new(vec![Label(1), Label(2)], 2)),
                            ).unwrap();
                            l
                        }
                        _ => {
                            let l = format!("iso:g{fresh}");
                            engine.register_lazy(
                                l.as_str(),
                                IncIso::init(Pattern::from_parts(&[0, 1, 2], &[(0, 1), (1, 2)])),
                            ).unwrap();
                            l
                        }
                    };
                    live.push(label.clone());
                    // A lazy joiner is consistent immediately, before its
                    // first commit: exact match with from-scratch state.
                    let id = engine.find(&label).expect("lazy view findable");
                    prop_assert!(engine.verify(id).is_ok(), "lazy view consistent at join");
                }
                _ => {}
            }
            prop_assert_eq!(engine.view_count(), live.len());

            let receipt = engine.commit(&batch_from_raw(raw)).unwrap();
            prop_assert_eq!(receipt.applied + receipt.dropped, receipt.submitted);
            if !receipt.is_noop() {
                prop_assert_eq!(receipt.per_view.len(), live.len());
                prop_assert_eq!(receipt.skipped_quarantined, 0);
            }

            // Audit every surviving view after every commit — lazy joiners
            // included, against from-scratch recomputation.
            if let Err(failures) = engine.verify_all() {
                panic!("round {round}: surviving views diverged: {failures}");
            }
            let mut roster: Vec<&str> = live.iter().map(String::as_str).collect();
            roster.sort_unstable();
            let mut got: Vec<&str> = engine.labels().collect();
            got.sort_unstable();
            prop_assert_eq!(got, roster, "registry roster matches shadow roster");
        }
    }
}
