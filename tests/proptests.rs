//! Property-based tests: for arbitrary graphs, queries and update batches,
//! every incremental algorithm agrees with from-scratch recomputation, and
//! the core data-structure invariants hold.

use incgraph::graph::graph::graph_from;
use incgraph::iso::enumerate_matches;
use incgraph::nfa::build_nfa;
use incgraph::prelude::*;
use incgraph::rpq::batch as rpq_batch;
use incgraph::scc::tarjan;
use proptest::prelude::*;

/// A small random digraph as (node labels, edge list) with ≤ `n` nodes.
fn arb_graph(n: u32, max_edges: usize) -> impl Strategy<Value = (Vec<u32>, Vec<(u32, u32)>)> {
    (2..=n).prop_flat_map(move |nodes| {
        let labels = proptest::collection::vec(0u32..4, nodes as usize);
        let edges = proptest::collection::vec(
            (0..nodes, 0..nodes).prop_filter("no self-loops", |(a, b)| a != b),
            0..max_edges,
        );
        (labels, edges)
    })
}

/// A batch of updates against the given node count: deletions reference
/// arbitrary pairs (absent ones are dropped below), insertions arbitrary
/// pairs.
fn arb_updates(nodes: u32, count: usize) -> impl Strategy<Value = Vec<(bool, u32, u32)>> {
    proptest::collection::vec(
        (any::<bool>(), 0..nodes, 0..nodes).prop_filter("no self-loops", |(_, a, b)| a != b),
        0..count,
    )
}

/// Make a well-formed batch (deletions of present edges, insertions of
/// absent ones, normalized) from raw proptest output.
fn realize_batch(g: &DynamicGraph, raw: &[(bool, u32, u32)]) -> UpdateBatch {
    let mut batch = UpdateBatch::new();
    let mut staged = g.clone();
    for &(insert, a, b) in raw {
        let (a, b) = (NodeId(a), NodeId(b));
        if insert && !staged.contains_edge(a, b) {
            // May reference fresh nodes — `apply` creates them (label 2,
            // outside the keyword/anchor labels, via the default fallback).
            let u = Update::insert_labeled(a, b, Some(Label(2)), Some(Label(2)));
            staged.apply(&u);
            batch.push(u);
        } else if !insert && staged.contains_edge(a, b) {
            staged.delete_edge(a, b);
            batch.push(Update::delete(a, b));
        }
    }
    batch.normalized()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn scc_incremental_equals_tarjan(
        (labels, edges) in arb_graph(14, 40),
        raw in arb_updates(14, 12),
    ) {
        let mut g = graph_from(&labels, &edges);
        let mut inc = IncScc::new(&g);
        let delta = realize_batch(&g, &raw);
        g.apply_batch(&delta);
        inc.apply(&g, &delta);
        prop_assert_eq!(inc.components(), tarjan(&g).canonical());
    }

    #[test]
    fn kws_incremental_equals_batch(
        (labels, edges) in arb_graph(14, 40),
        raw in arb_updates(14, 12),
        bound in 1u32..4,
    ) {
        let mut g = graph_from(&labels, &edges);
        let q = KwsQuery::new(vec![Label(0), Label(1)], bound);
        let mut inc = IncKws::new(&g, q.clone());
        let delta = realize_batch(&g, &raw);
        g.apply_batch(&delta);
        inc.apply(&g, &delta);
        let fresh = IncKws::new(&g, q.clone());
        prop_assert_eq!(inc.answer_signature(), fresh.answer_signature());
        prop_assert!(inc.kdist().check_invariants(&g, &q).is_ok());
    }

    #[test]
    fn rpq_incremental_equals_batch(
        (labels, edges) in arb_graph(12, 30),
        raw in arb_updates(12, 10),
    ) {
        let mut interner = LabelInterner::new();
        for i in 0..4 { interner.intern(&format!("l{i}")); }
        let q = Regex::parse("l0.(l1+l2)*.l3", &mut interner).unwrap();
        let mut g = graph_from(&labels, &edges);
        let mut inc = IncRpq::new(&g, &q);
        let delta = realize_batch(&g, &raw);
        g.apply_batch(&delta);
        inc.apply(&g, &delta);
        let mut w = WorkStats::new();
        let fresh = rpq_batch::evaluate(&g, &build_nfa(&q), &mut w);
        prop_assert_eq!(inc.sorted_answer(), rpq_batch::sorted_answer(&fresh));
        // auxiliary structure equals a fresh construction
        let rebuilt = IncRpq::new(&g, &q);
        prop_assert_eq!(inc.marking_signature(), rebuilt.marking_signature());
    }

    #[test]
    fn iso_incremental_equals_vf2(
        (labels, edges) in arb_graph(12, 30),
        raw in arb_updates(12, 10),
    ) {
        let p = Pattern::from_parts(&[0, 1], &[(0, 1)]);
        let mut g = graph_from(&labels, &edges);
        let mut inc = IncIso::new(&g, p.clone());
        let delta = realize_batch(&g, &raw);
        g.apply_batch(&delta);
        inc.apply(&g, &delta);
        let mut w = WorkStats::new();
        let mut fresh: Vec<_> = enumerate_matches(&g, &p, &mut w).into_iter().collect();
        fresh.sort();
        prop_assert_eq!(inc.sorted_matches(), fresh);
    }

    #[test]
    fn scc_rank_invariant_survives_batches(
        (labels, edges) in arb_graph(12, 30),
        raw in arb_updates(12, 10),
    ) {
        let mut g = graph_from(&labels, &edges);
        let mut inc = IncScc::new(&g);
        let delta = realize_batch(&g, &raw);
        g.apply_batch(&delta);
        inc.apply(&g, &delta);
        prop_assert!(inc.condensation().check_invariants().is_ok());
        // Ranks strictly decrease along every inter-component graph edge.
        for (u, v) in g.edges() {
            let (a, b) = (inc.scc_of(u), inc.scc_of(v));
            if a != b {
                prop_assert!(inc.rank(a) > inc.rank(b));
            }
        }
    }

    #[test]
    fn update_normalization_is_idempotent(
        raw in arb_updates(10, 16),
    ) {
        let ups: Vec<Update> = raw
            .iter()
            .map(|&(ins, a, b)| {
                if ins {
                    Update::insert(NodeId(a), NodeId(b))
                } else {
                    Update::delete(NodeId(a), NodeId(b))
                }
            })
            .collect();
        let batch = UpdateBatch::from_updates(ups);
        let once = batch.normalized();
        prop_assert_eq!(once.normalized(), once.clone());
        // No edge appears both inserted and deleted after normalization.
        let ins: std::collections::HashSet<_> =
            once.insertions().map(|u| u.edge()).collect();
        for d in once.deletions() {
            prop_assert!(!ins.contains(&d.edge()));
        }
    }
}
