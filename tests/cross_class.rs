//! Cross-crate integration: all four query classes maintained side by side
//! over the same evolving graph, each verified against its batch
//! counterpart after every batch of updates.

use incgraph::graph::generator::{random_update_batch, uniform_graph};
use incgraph::iso::enumerate_matches;
use incgraph::nfa::build_nfa;
use incgraph::prelude::*;
use incgraph::rpq::batch as rpq_batch;
use incgraph::scc::tarjan;

fn queries(labels: &mut LabelInterner) -> (Regex, KwsQuery, Pattern) {
    let q_rpq = Regex::parse("l3.(l0+l1)*.l2", labels).unwrap();
    let q_kws = KwsQuery::new(vec![Label(0), Label(1)], 2);
    let pattern = Pattern::from_parts(&[0, 1, 2], &[(0, 1), (1, 2), (0, 2)]);
    (q_rpq, q_kws, pattern)
}

#[test]
fn four_classes_stay_consistent_across_batches() {
    let mut labels = LabelInterner::new();
    for i in 0..8 {
        labels.intern(&format!("l{i}"));
    }
    let (q_rpq, q_kws, pattern) = queries(&mut labels);

    for seed in 0..3u64 {
        let mut g = uniform_graph(120, 500, 8, seed);
        let mut rpq = IncRpq::new(&g, &q_rpq);
        let mut kws = IncKws::new(&g, q_kws.clone());
        let mut scc = IncScc::new(&g);
        let mut iso = IncIso::new(&g, pattern.clone());

        for round in 0..4u64 {
            let delta = random_update_batch(&g, 25, 0.5, seed * 100 + round);
            g.apply_batch(&delta);
            rpq.apply(&g, &delta);
            kws.apply(&g, &delta);
            scc.apply(&g, &delta);
            iso.apply(&g, &delta);

            // RPQ against the marking-free batch traversal.
            let mut w = WorkStats::new();
            let fresh_rpq = rpq_batch::evaluate(&g, &build_nfa(&q_rpq), &mut w);
            assert_eq!(
                rpq.sorted_answer(),
                rpq_batch::sorted_answer(&fresh_rpq),
                "RPQ diverged (seed {seed}, round {round})"
            );

            // KWS against a fresh bounded computation.
            let fresh_kws = IncKws::new(&g, q_kws.clone());
            assert_eq!(
                kws.answer_signature(),
                fresh_kws.answer_signature(),
                "KWS diverged (seed {seed}, round {round})"
            );

            // SCC against Tarjan.
            assert_eq!(
                scc.components(),
                tarjan(&g).canonical(),
                "SCC diverged (seed {seed}, round {round})"
            );

            // ISO against VF2.
            let mut w = WorkStats::new();
            let mut fresh_iso: Vec<_> = enumerate_matches(&g, &pattern, &mut w)
                .into_iter()
                .collect();
            fresh_iso.sort();
            assert_eq!(
                iso.sorted_matches(),
                fresh_iso,
                "ISO diverged (seed {seed}, round {round})"
            );
        }
    }
}

#[test]
fn unit_driving_equals_batch_driving() {
    // Applying ΔG one update at a time (the Inc*ⁿ mode) must land on the
    // same answers as the grouped batch mode.
    let mut labels = LabelInterner::new();
    for i in 0..6 {
        labels.intern(&format!("l{i}"));
    }
    let q_rpq = Regex::parse("l2.(l0+l1)*", &mut labels).unwrap();
    let q_kws = KwsQuery::new(vec![Label(0)], 2);

    let g0 = uniform_graph(80, 320, 6, 9);
    let delta = random_update_batch(&g0, 30, 0.5, 10);

    // Batch mode.
    let mut g_batch = g0.clone();
    let mut rpq_b = IncRpq::new(&g_batch, &q_rpq);
    let mut kws_b = IncKws::new(&g_batch, q_kws.clone());
    let mut scc_b = IncScc::new(&g_batch);
    g_batch.apply_batch(&delta);
    rpq_b.apply(&g_batch, &delta);
    kws_b.apply(&g_batch, &delta);
    scc_b.apply(&g_batch, &delta);

    // Unit-at-a-time mode.
    let mut g_unit = g0.clone();
    let mut rpq_u = IncRpq::new(&g_unit, &q_rpq);
    let mut kws_u = IncKws::new(&g_unit, q_kws);
    let mut scc_u = IncScc::new(&g_unit);
    incgraph::core::incremental::apply_one_by_one(&mut rpq_u, &mut g_unit, &delta);
    g_unit = g0.clone();
    incgraph::core::incremental::apply_one_by_one(&mut kws_u, &mut g_unit, &delta);
    g_unit = g0.clone();
    incgraph::core::incremental::apply_one_by_one(&mut scc_u, &mut g_unit, &delta);

    assert_eq!(rpq_b.sorted_answer(), rpq_u.sorted_answer());
    assert_eq!(kws_b.answer_signature(), kws_u.answer_signature());
    assert_eq!(scc_b.components(), scc_u.components());
}

#[test]
fn dynscc_baseline_agrees_with_incscc() {
    let mut g = uniform_graph(100, 300, 4, 21);
    let mut inc = IncScc::new(&g);
    let mut dyn_scc = incgraph::scc::DynScc::new(&g);
    for round in 0..4u64 {
        let delta = random_update_batch(&g, 20, 0.5, 300 + round);
        g.apply_batch(&delta);
        inc.apply(&g, &delta);
        // DynSCC runs per-unit in its natural mode; here feed it batches.
        dyn_scc.apply(&g, &delta);
        assert_eq!(inc.components(), dyn_scc.components(), "round {round}");
    }
}
