//! Section 3, executable: the Δ-reduction from SSRP to RPQ run against the
//! real RPQ engine, and the Fig. 9 two-cycle gadget behind the insertion
//! lower bound.

use incgraph::core::gadgets::{two_cycle_gadget, v_nodes};
use incgraph::core::reductions::{map_input_updates, map_output_updates, ssrp_to_rpq, PairChange};
use incgraph::core::Ssrp;
use incgraph::graph::generator::{random_update_batch, uniform_graph};
use incgraph::graph::traversal::reachable_from;
use incgraph::prelude::*;

/// Run the full Δ-reduction loop with the *real* IncRPQ as the Q2-solver:
/// fo(ΔO₂) must equal the true change of the SSRP answer.
#[test]
fn ssrp_to_rpq_reduction_with_real_engine() {
    for seed in 0..4u64 {
        let g1 = uniform_graph(40, 120, 3, seed);
        let source = NodeId(0);
        let (red, mut interner) = ssrp_to_rpq(&g1, source);
        let q2 = Regex::parse(red.query, &mut interner).unwrap();

        // Solve the image instance with IncRPQ.
        let mut g2 = red.graph.clone();
        let mut rpq = IncRpq::new(&g2, &q2);
        let before_pairs = rpq.sorted_answer();

        // Defining property: (vs, vi) ∈ Q2(G2) ⟺ vi reachable from vs.
        let reach = reachable_from(&g1, source);
        for v in g1.nodes() {
            assert_eq!(
                before_pairs.contains(&(source, v)),
                reach[v.index()],
                "defining property violated at {v:?}"
            );
        }
        assert!(before_pairs.iter().all(|&(s, _)| s == source));

        // Apply updates on the SSRP side, mapped through fi.
        let delta1 = random_update_batch(&g1, 10, 0.5, seed + 50);
        let delta2 = map_input_updates(&red, &delta1);
        let mut g1b = g1.clone();
        g1b.apply_batch(&delta1);
        g2.apply_batch(&delta2);
        rpq.apply(&g2, &delta2);

        // ΔO2 from the engine, mapped back through fo.
        let after_pairs = rpq.sorted_answer();
        let mut delta_o2: Vec<PairChange> = Vec::new();
        for &p in &after_pairs {
            if !before_pairs.contains(&p) {
                delta_o2.push(PairChange {
                    pair: p,
                    added: true,
                });
            }
        }
        for &p in &before_pairs {
            if !after_pairs.contains(&p) {
                delta_o2.push(PairChange {
                    pair: p,
                    added: false,
                });
            }
        }
        let delta_o1 = map_output_updates(&red, &delta_o2);

        // Ground truth on the SSRP side.
        let before = reachable_from(&g1, source);
        let after = reachable_from(&g1b, source);
        for c in &delta_o1 {
            assert_eq!(after[c.node.index()], c.reachable);
            assert_ne!(
                before.get(c.node.index()).copied().unwrap_or(false),
                c.reachable
            );
        }
        let flipped = (0..g1b.node_count())
            .filter(|&i| {
                before.get(i).copied().unwrap_or(false) != after.get(i).copied().unwrap_or(false)
            })
            .count();
        assert_eq!(flipped, delta_o1.len(), "fo(ΔO2) incomplete (seed {seed})");

        // And the maintained SSRP answers the same thing.
        let mut ssrp = Ssrp::new(&g1, source);
        let mut g1c = g1.clone();
        for u in delta1.iter() {
            let (a, b) = u.edge();
            g1c.apply(u);
            if u.is_insert() {
                ssrp.insert_edge(&g1c, a, b);
            } else {
                ssrp.delete_edge(&g1c, a, b);
            }
        }
        assert_eq!(ssrp.reachable(), after.as_slice());
    }
}

/// The Fig. 9 gadget: Q(G) = Q(G⊕Δ1) = Q(G⊕Δ2) = ∅ but
/// Q(G⊕Δ1⊕Δ2) = {(vi, w)} — and the first insertion, whose |CHANGED| is 1,
/// forces the incremental engine to touch Θ(n) auxiliary data.
#[test]
fn two_cycle_gadget_shows_unbounded_aff() {
    let mut last_aff = 0u64;
    for n in [10usize, 20, 40] {
        let gadget = two_cycle_gadget(n);
        let mut interner = gadget.interner.clone();
        let q = Regex::parse(gadget.query, &mut interner).unwrap();
        let mut g = gadget.graph.clone();
        let mut rpq = IncRpq::new(&g, &q);
        assert!(rpq.answer().is_empty(), "Q(G) must be empty");

        // Δ1 alone: output unchanged.
        let d1 = UpdateBatch::from_updates(vec![gadget.delta1]);
        g.apply_batch(&d1);
        rpq.apply(&g, &d1);
        assert!(rpq.answer().is_empty(), "Q(G⊕Δ1) must be empty");
        let aff1 = rpq.last_metrics().affected;
        assert_eq!(rpq.last_metrics().changed(), 1, "|CHANGED| = |ΔG| = 1");
        assert!(
            aff1 > last_aff,
            "AFF must grow with n: {aff1} vs previous {last_aff}"
        );
        assert!(aff1 as usize >= n, "AFF must be Ω(n): {aff1} for n = {n}");
        last_aff = aff1;

        // Δ2 completes the pattern: all 2n v-nodes match.
        let d2 = UpdateBatch::from_updates(vec![gadget.delta2]);
        g.apply_batch(&d2);
        rpq.apply(&g, &d2);
        let expected: Vec<(NodeId, NodeId)> = v_nodes(&gadget)
            .into_iter()
            .map(|v| (v, gadget.w))
            .collect();
        assert_eq!(rpq.sorted_answer(), expected);
    }
}

/// Δ2 alone must also leave the answer empty (the adversary's other branch).
#[test]
fn two_cycle_gadget_delta2_alone_is_empty() {
    let gadget = two_cycle_gadget(15);
    let mut interner = gadget.interner.clone();
    let q = Regex::parse(gadget.query, &mut interner).unwrap();
    let mut g = gadget.graph.clone();
    let mut rpq = IncRpq::new(&g, &q);
    let d2 = UpdateBatch::from_updates(vec![gadget.delta2]);
    g.apply_batch(&d2);
    rpq.apply(&g, &d2);
    assert!(rpq.answer().is_empty(), "Q(G⊕Δ2) must be empty");
}
